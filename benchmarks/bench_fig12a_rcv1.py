"""Figure 12(a) — end-to-end comparison on the RCV1-like dataset.

Five systems on the small cluster (5 workers): end-to-end run time,
final test error, and the convergence series (train error vs simulated
time).  Paper shape: MLlib slowest by far; DimBoost fastest; LightGBM
between DimBoost and TencentBoost; XGBoost behind both.
"""

from __future__ import annotations

import pytest

from repro import BACKEND_NAMES, ClusterConfig, TrainConfig, train_distributed
from repro.boosting import error_rate
from repro.datasets import rcv1_like, train_test_split

from conftest import bench_scale


def run_systems(data, cluster, config, systems):
    """Train every system; returns {system: (result, test_error)}."""
    train, test = train_test_split(data, test_fraction=0.1, seed=0)
    out = {}
    for system in systems:
        kwargs = {}
        result = train_distributed(system, train, cluster, config, **kwargs)
        err = error_rate(test.y, result.model.predict(test.X))
        out[system] = (result, err)
    return out


def summarize(report, title, outcomes, notes=""):
    dim_time = outcomes["dimboost"][0].sim_seconds
    rows = [
        [
            system,
            result.sim_seconds,
            result.sim_seconds / dim_time,
            result.breakdown.computation,
            result.breakdown.communication,
            err,
        ]
        for system, (result, err) in outcomes.items()
    ]
    report.add_table(
        title,
        [
            "system",
            "sim seconds",
            "vs dimboost",
            "computation",
            "communication",
            "test error",
        ],
        rows,
        notes=notes,
    )
    convergence = []
    for system, (result, _err) in outcomes.items():
        for record in result.rounds:
            convergence.append(
                [system, record.tree_index, record.sim_elapsed, record.train_error]
            )
    report.add_table(
        title + " — convergence",
        ["system", "tree", "sim elapsed", "train error"],
        convergence,
        notes="train error vs simulated time (the right-hand plots)",
    )


def test_fig12a_rcv1(benchmark, report):
    scale = bench_scale()
    data = rcv1_like(scale=0.25 * scale, seed=0)
    cluster = ClusterConfig(n_workers=5, n_servers=5)
    config = TrainConfig(
        n_trees=8, max_depth=6, n_split_candidates=20, learning_rate=0.1
    )

    outcomes = benchmark.pedantic(
        lambda: run_systems(data, cluster, config, BACKEND_NAMES),
        rounds=1,
        iterations=1,
    )
    summarize(
        report,
        "Figure 12(a): RCV1-like end-to-end (5 workers)",
        outcomes,
        notes=f"n={data.n_instances}, m={data.n_features}",
    )
    times = {s: r.sim_seconds for s, (r, _e) in outcomes.items()}
    errors = {s: e for s, (_r, e) in outcomes.items()}
    # Paper shape: DimBoost fastest; MLlib slowest; accuracy comparable.
    assert times["dimboost"] == min(times.values())
    assert times["mllib"] == max(times.values())
    assert times["xgboost"] > times["lightgbm"]
    assert max(errors.values()) - min(errors.values()) < 0.05
