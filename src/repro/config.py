"""Configuration objects for training and cluster simulation.

Two dataclasses are exposed:

* :class:`TrainConfig` — GBDT hyper-parameters (Section 7.1 of the paper
  lists the defaults used in the evaluation; we keep the same names).
* :class:`ClusterConfig` — shape of the simulated cluster: number of
  workers, number of parameter servers, and the alpha/beta/gamma network
  cost constants of the Section 3 cost model.

Both validate eagerly in ``__post_init__`` and raise :class:`ConfigError`
with a message naming the offending field.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from .errors import ConfigError

#: Loss names accepted by :class:`TrainConfig`.
SUPPORTED_LOSSES = ("logistic", "squared")

#: Histogram-build execution backends accepted by :class:`TrainConfig`.
PARALLEL_BACKENDS = ("simulated", "threads", "process")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of a GBDT training run.

    The defaults mirror the paper's protocol (Section 7.1): 20 trees of
    maximal depth 7, 20 split candidates, learning rate 0.01, feature
    sampling ratio 1.0, and 8-bit histogram compression.

    Attributes:
        n_trees: Number of boosting rounds ``T``.
        max_depth: Maximal tree depth ``d``; the root is at depth 1, so a
            tree holds at most ``2**d - 1`` nodes.
        n_split_candidates: Number of candidate split values ``K`` proposed
            per feature from the quantile sketch.
        learning_rate: Shrinkage ``eta`` applied to leaf weights.
        feature_sample_ratio: Fraction ``sigma`` of features sampled per tree.
        reg_lambda: L2 regularization ``lambda`` on leaf weights.
        reg_gamma: Complexity penalty ``gamma`` per leaf.
        min_split_gain: Minimal objective gain required to split a node.
        min_child_weight: Minimal sum of hessians required on each side of
            a split (standard GBDT guard against degenerate leaves).
        loss: Name of the loss function, one of ``SUPPORTED_LOSSES``.
        compression_bits: Width ``r`` of the fixed-point histogram codec;
            0 disables compression (full 32-bit floats on the wire).
        compression_block: Values per fixed-point scale of the codec; 0
            (default) uses one scale per per-feature g/h histogram
            (``n_split_candidates + 1`` buckets).  Must divide the
            per-feature histogram width ``2 * (n_split_candidates + 1)``
            when set; smaller blocks trade scale overhead for SNR.
        batch_size: Instance batch size ``b`` for parallel histogram
            construction.
        n_threads: Simulated per-worker thread count ``q`` used for the
            parallel-span accounting of batch construction.
        n_processes: Worker processes for the ``"process"`` parallel
            backend; 1 keeps histogram builds in the driving process.
        parallel_backend: How batch histogram construction executes —
            ``"simulated"`` (serial kernels, span accounting),
            ``"threads"`` (real thread pool, GIL-capped), or
            ``"process"`` (shared-memory process pool on real cores).
        sketch_eps: Rank-error bound of the Greenwald-Khanna sketch.
        seed: Seed for all stochastic choices (feature sampling, stochastic
            rounding, synthetic splits of data).
        max_retries: Delivery retries per PS message and rollback attempts
            per round when a fault plan is active; a fault persisting past
            this budget raises ``ClusterFaultError``.
        checkpoint_every: Cadence (in completed boosting rounds) of the
            recovery checkpoints a faulted run can roll back to.
        agg_window: Local-aggregation window for distributed histogram
            pushes: workers fold this many node deltas into one batched
            PS message before communicating (Horovod's
            ``LocalGradientAggregationHelper`` applied to histogram
            slabs).  1 (default) pushes every node delta immediately;
            any value leaves the trained model bit-identical.
        staleness: Bounded-staleness bound ``S`` for layer barriers in
            distributed training: workers may run up to ``S`` tree
            layers ahead of the slowest peer, and barrier costs are
            charged once per ``S + 1`` layers instead of per layer.
            0 (default) keeps DimBoost's fully synchronous barrier and
            is bit-identical to it; ``S >= 1`` trades bounded score
            staleness for less barrier time.
    """

    n_trees: int = 20
    max_depth: int = 7
    n_split_candidates: int = 20
    learning_rate: float = 0.01
    feature_sample_ratio: float = 1.0
    reg_lambda: float = 1.0
    reg_gamma: float = 0.0
    min_split_gain: float = 0.0
    min_child_weight: float = 0.0
    loss: str = "logistic"
    compression_bits: int = 8
    compression_block: int = 0
    batch_size: int = 10_000
    n_threads: int = 20
    n_processes: int = 1
    parallel_backend: str = "simulated"
    sketch_eps: float = 0.01
    seed: int = 0
    max_retries: int = 3
    checkpoint_every: int = 1
    agg_window: int = 1
    staleness: int = 0

    def __post_init__(self) -> None:
        _require(self.n_trees >= 1, f"n_trees must be >= 1, got {self.n_trees}")
        _require(self.max_depth >= 1, f"max_depth must be >= 1, got {self.max_depth}")
        _require(
            self.n_split_candidates >= 1,
            f"n_split_candidates must be >= 1, got {self.n_split_candidates}",
        )
        _require(
            self.learning_rate > 0.0,
            f"learning_rate must be > 0, got {self.learning_rate}",
        )
        _require(
            0.0 < self.feature_sample_ratio <= 1.0,
            f"feature_sample_ratio must be in (0, 1], got {self.feature_sample_ratio}",
        )
        _require(self.reg_lambda >= 0.0, f"reg_lambda must be >= 0, got {self.reg_lambda}")
        _require(self.reg_gamma >= 0.0, f"reg_gamma must be >= 0, got {self.reg_gamma}")
        _require(
            self.min_split_gain >= 0.0,
            f"min_split_gain must be >= 0, got {self.min_split_gain}",
        )
        _require(
            self.min_child_weight >= 0.0,
            f"min_child_weight must be >= 0, got {self.min_child_weight}",
        )
        _require(
            self.loss in SUPPORTED_LOSSES,
            f"loss must be one of {SUPPORTED_LOSSES}, got {self.loss!r}",
        )
        _require(
            self.compression_bits in (0, 2, 4, 8, 16),
            f"compression_bits must be one of (0, 2, 4, 8, 16), got {self.compression_bits}",
        )
        _require(
            self.compression_block >= 0,
            f"compression_block must be >= 0, got {self.compression_block}",
        )
        _require(self.batch_size >= 1, f"batch_size must be >= 1, got {self.batch_size}")
        _require(self.n_threads >= 1, f"n_threads must be >= 1, got {self.n_threads}")
        _require(
            self.n_processes >= 1,
            f"n_processes must be >= 1, got {self.n_processes}",
        )
        _require(
            self.parallel_backend in PARALLEL_BACKENDS,
            f"parallel_backend must be one of {PARALLEL_BACKENDS}, "
            f"got {self.parallel_backend!r}",
        )
        _require(
            0.0 < self.sketch_eps < 0.5,
            f"sketch_eps must be in (0, 0.5), got {self.sketch_eps}",
        )
        _require(
            self.max_retries >= 0,
            f"max_retries must be >= 0, got {self.max_retries}",
        )
        _require(
            self.checkpoint_every >= 1,
            f"checkpoint_every must be >= 1, got {self.checkpoint_every}",
        )
        _require(
            self.agg_window >= 1,
            f"agg_window must be >= 1, got {self.agg_window}",
        )
        _require(
            self.staleness >= 0,
            f"staleness must be >= 0, got {self.staleness}",
        )

    @property
    def max_nodes(self) -> int:
        """Maximal number of nodes in one tree, ``2**max_depth - 1``."""
        return (1 << self.max_depth) - 1

    def with_overrides(self, **changes: Any) -> "TrainConfig":
        """Return a copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class NetworkCost:
    """Per-message network cost constants of the Section 3 model.

    The time for one node to send or receive a package of ``n`` bytes is
    ``alpha + n * beta``; merging ``n`` bytes of histograms costs
    ``n * gamma``.  The defaults approximate the paper's 1 GbE cluster:
    0.1 ms latency, ~8 ns/byte transfer (≈1 Gbit/s), 1 ns/byte merge.

    ``sketch_entry_bytes`` is the approximate wire weight of one
    quantile-sketch entry (value + rank bounds) used when charging the
    CREATE_SKETCH / PULL_SKETCH exchange.
    """

    alpha: float = 1e-4
    beta: float = 8e-9
    gamma: float = 1e-9
    sketch_entry_bytes: float = 16.0

    def __post_init__(self) -> None:
        _require(self.alpha >= 0.0, f"alpha must be >= 0, got {self.alpha}")
        _require(self.beta >= 0.0, f"beta must be >= 0, got {self.beta}")
        _require(self.gamma >= 0.0, f"gamma must be >= 0, got {self.gamma}")
        _require(
            self.sketch_entry_bytes > 0.0,
            f"sketch_entry_bytes must be > 0, got {self.sketch_entry_bytes}",
        )


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster.

    Attributes:
        n_workers: Number of workers ``w``; each holds one data shard.
        n_servers: Number of parameter servers ``p``.  The paper co-locates
            one worker and one server per machine by default.
        network: Alpha/beta/gamma constants used by the simulated fabric.
        colocated: Whether servers are co-located with workers (affects
            the PS push accounting: the local slice skips the wire).
        loading_bytes_per_second: Simulated HDFS ingest rate used to
            charge the data-loading phase (bytes/second).  Benches sweep
            this to model faster or slower storage tiers.
        worker_speeds: Optional relative speed per worker (1.0 = nominal;
            0.5 = half speed).  Models heterogeneous clusters: a worker's
            measured compute is divided by its speed before the barrier,
            so one straggler slows every synchronous phase — the
            sensitivity the authors' companion heterogeneity-aware PS
            work addresses.
        grid: Optional 2-D worker grid ``(rows, cols)`` for
            block-distributed training (row×feature blocks,
            arXiv:1904.10522).  ``rows * cols`` must equal ``n_workers``;
            worker ``r * cols + c`` holds row band ``r`` × feature stripe
            ``c``.  ``None`` (the default) is plain row sharding,
            equivalent to ``(n_workers, 1)``.
        speed_jitter: Amplitude of per-layer multiplicative speed noise
            (``0.0`` disables, must stay below 1.0): each tree layer
            every worker's effective speed is ``speed_of(wid) * f`` with
            ``f`` drawn uniformly from ``[1 - a, 1 + a]`` by a seeded
            per-layer stream.  Models rotating stragglers — the regime
            where bounded staleness beats pure windowing.  Pure clock
            accounting; trained model bits are unchanged.
    """

    n_workers: int = 4
    n_servers: int = 4
    network: NetworkCost = field(default_factory=NetworkCost)
    colocated: bool = True
    loading_bytes_per_second: float = 200e6
    worker_speeds: tuple[float, ...] | None = None
    grid: tuple[int, int] | None = None
    speed_jitter: float = 0.0

    def __post_init__(self) -> None:
        _require(self.n_workers >= 1, f"n_workers must be >= 1, got {self.n_workers}")
        _require(self.n_servers >= 1, f"n_servers must be >= 1, got {self.n_servers}")
        if self.grid is not None:
            grid = tuple(int(g) for g in self.grid)
            object.__setattr__(self, "grid", grid)
            _require(
                len(grid) == 2,
                f"grid must be (rows, cols), got {self.grid}",
            )
            rows, cols = grid
            _require(
                rows >= 1 and cols >= 1,
                f"grid dimensions must be >= 1, got {rows}x{cols}",
            )
            _require(
                rows * cols == self.n_workers,
                f"grid {rows}x{cols} needs {rows * cols} workers but "
                f"n_workers is {self.n_workers}",
            )
        _require(
            self.loading_bytes_per_second > 0.0,
            f"loading_bytes_per_second must be > 0, got "
            f"{self.loading_bytes_per_second}",
        )
        _require(
            0.0 <= self.speed_jitter < 1.0,
            f"speed_jitter must be in [0, 1), got {self.speed_jitter}",
        )
        if self.worker_speeds is not None:
            speeds = tuple(float(s) for s in self.worker_speeds)
            object.__setattr__(self, "worker_speeds", speeds)
            _require(
                len(speeds) == self.n_workers,
                f"worker_speeds must have n_workers={self.n_workers} entries, "
                f"got {len(speeds)}",
            )
            _require(
                all(s > 0 for s in speeds),
                f"worker_speeds must be positive, got {speeds}",
            )

    @property
    def grid_shape(self) -> tuple[int, int]:
        """The effective worker grid: ``grid`` or ``(n_workers, 1)``."""
        if self.grid is None:
            return (self.n_workers, 1)
        return self.grid

    def speed_of(self, worker_id: int) -> float:
        """Relative speed of one worker (1.0 when unspecified)."""
        if self.worker_speeds is None:
            return 1.0
        return self.worker_speeds[worker_id]

    def with_overrides(self, **changes: Any) -> "ClusterConfig":
        """Return a copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)
