"""Analysis utilities: communication-cost curves and PCA.

* :mod:`commcost` — tabulates the Table 1 closed forms over worker/size
  sweeps and locates crossovers (the Section 3 "Remarks" discussion).
* :mod:`pca` — randomized PCA over :class:`CSRMatrix`, the dimension-
  reduction baseline of Table 6.
"""

from .commcost import CostTable, tabulate_costs, speedup_table
from .pca import PCAModel, fit_pca

__all__ = ["CostTable", "tabulate_costs", "speedup_table", "PCAModel", "fit_pca"]
