"""The four aggregation operators as real algorithms (Section 3, Figure 3).

Each collective takes one contribution array per worker, performs the
*actual* data movement of the modelled system — the binomial tree of
XGBoost, the recursive halving of LightGBM, the all-to-one reduce of
MLlib, the scatter-to-servers of DimBoost — and returns the numerically
real result together with a :class:`CollectiveResult` accounting record:
communication steps, bytes moved, and the simulated elapsed time charged
per the paper's Table 1 cost model.

Payloads travel as float32 on the wire (the paper's 4-byte gradients), so
``wire bytes = 4 * n_values`` unless a caller supplies compressed sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import CommunicationError
from .costmodel import (
    CostParams,
    dimboost_aggregation_time,
    is_power_of_two,
    lightgbm_aggregation_time,
    log2_steps,
    mllib_aggregation_time,
    xgboost_aggregation_time,
)

#: Bytes per histogram value on the wire (float32).
WIRE_BYTES_PER_VALUE = 4


@dataclass
class CollectiveResult:
    """Accounting record of one collective invocation.

    Attributes:
        steps: Communication steps taken (Table 1's ``# comm steps``
            column counts logical steps; the pre-step for non-power-of-two
            halving is included here).
        total_bytes: Bytes moved across all links.
        sim_seconds: Simulated elapsed time per the Table 1 model.
        messages: Number of point-to-point messages sent.
        segments: For scatter-type collectives, the element range
            ``[lo, hi)`` each worker/server ended up owning.
    """

    steps: int
    total_bytes: int
    sim_seconds: float
    messages: int
    segments: dict[int, tuple[int, int]] = field(default_factory=dict)


def _as_matrix(contributions: list[np.ndarray]) -> np.ndarray:
    """Stack and validate per-worker contributions."""
    if not contributions:
        raise CommunicationError("at least one contribution is required")
    shapes = {c.shape for c in contributions}
    if len(shapes) != 1:
        raise CommunicationError(f"contribution shapes differ: {sorted(shapes)}")
    first = contributions[0]
    if first.ndim != 1:
        raise CommunicationError(
            f"contributions must be 1-D flat arrays, got ndim={first.ndim}"
        )
    return np.stack([np.asarray(c, dtype=np.float64) for c in contributions])


def point_to_point_time(n_bytes: float, cost: CostParams) -> float:
    """Time for one package of ``n_bytes``: ``alpha + n * beta``."""
    if n_bytes < 0:
        raise CommunicationError(f"message size must be >= 0, got {n_bytes}")
    return cost.alpha + n_bytes * cost.beta


def reduce_to_coordinator(
    contributions: list[np.ndarray], cost: CostParams
) -> tuple[np.ndarray, CollectiveResult]:
    """MLlib-style all-to-one reduce: every worker ships to one coordinator.

    Worker 0 is the coordinator (MLlib's ``reduceByKey`` target for a tree
    node).  All w contributions funnel through its NIC, hence the
    ``h * beta * w`` transfer term of Table 1.
    """
    data = _as_matrix(contributions)
    w = len(contributions)
    h = data.shape[1] * WIRE_BYTES_PER_VALUE
    result = data.sum(axis=0)
    moved = (w - 1) * h
    stats = CollectiveResult(
        steps=1 if w > 1 else 0,
        total_bytes=moved,
        sim_seconds=mllib_aggregation_time(w, h, cost),
        messages=w - 1,
    )
    return result, stats


def allreduce_binomial(
    contributions: list[np.ndarray],
    cost: CostParams,
    full_broadcast: bool = False,
) -> tuple[np.ndarray, CollectiveResult]:
    """XGBoost-style binomial-tree reduce to the root worker.

    Leaf pairs merge bottom-up in ``ceil(log2 w)`` non-overlapping steps
    (Section 2.3: "these steps cannot overlap in XGBoost's
    implementation").  The root (worker 0) holds the sum.  XGBoost then
    broadcasts only the small split decision, so the full histogram is
    *not* sent back down by default; pass ``full_broadcast=True`` to model
    a textbook AllReduce instead (time doubles).
    """
    data = _as_matrix(contributions)
    w = len(contributions)
    h = data.shape[1] * WIRE_BYTES_PER_VALUE
    partial = [row.copy() for row in data]
    alive = list(range(w))
    moved = 0
    messages = 0
    steps = 0
    while len(alive) > 1:
        steps += 1
        survivors = []
        for j in range(0, len(alive) - 1, 2):
            dst, src = alive[j], alive[j + 1]
            partial[dst] += partial[src]
            moved += h
            messages += 1
            survivors.append(dst)
        if len(alive) % 2 == 1:
            survivors.append(alive[-1])
        alive = survivors
    result = partial[alive[0]]
    sim = xgboost_aggregation_time(w, h, cost)
    if full_broadcast:
        sim += (h * cost.beta + cost.alpha) * log2_steps(w)
        moved += (w - 1) * h
        messages += w - 1
        steps += log2_steps(w)
    stats = CollectiveResult(
        steps=steps, total_bytes=moved, sim_seconds=sim, messages=messages
    )
    return result, stats


def reduce_scatter_halving(
    contributions: list[np.ndarray], cost: CostParams, align: int = 1
) -> tuple[list[np.ndarray | None], CollectiveResult]:
    """LightGBM-style recursive-halving ReduceScatter.

    Workers are split into two sublists that exchange the histogram half
    the *other* sublist is responsible for; recursion halves the exchanged
    size every step (Section 2.3, Figure 3).  Each participant ends up
    owning the fully merged sum of one contiguous element range.

    For non-power-of-two ``w``, the excess workers first fold their data
    into a partner (a pre-step) and own no segment afterwards — and, per
    the paper, the charged time doubles.

    ``align`` snaps segment boundaries to multiples of that many elements
    (e.g. one feature's ``2 * n_bins`` histogram block), so every owned
    segment covers whole features and its owner can find splits locally.

    Returns:
        (owned, stats) where ``owned[i]`` is worker i's merged segment
        (None for folded-away workers) and ``stats.segments[i]`` its
        ``[lo, hi)`` element range.
    """
    data = _as_matrix(contributions)
    w, n = data.shape
    if align < 1:
        raise CommunicationError(f"align must be >= 1, got {align}")
    if n % align != 0:
        raise CommunicationError(
            f"array length {n} is not a multiple of align {align}"
        )
    h = n * WIRE_BYTES_PER_VALUE
    buffers = [row.copy() for row in data]
    moved = 0
    messages = 0
    k = 1 << (w.bit_length() - 1)
    if k > w:
        k >>= 1
    pre_steps = 0
    if k != w:
        # Fold extras into the first (w - k) participants.
        pre_steps = 1
        for i in range(k, w):
            buffers[i - k] += buffers[i]
            moved += h
            messages += 1

    segments: dict[int, tuple[int, int]] = {}

    def halve(workers: list[int], lo: int, hi: int) -> None:
        nonlocal moved, messages
        if len(workers) == 1:
            segments[workers[0]] = (lo, hi)
            return
        half = len(workers) // 2
        units = (hi - lo) // align
        mid = lo + max(1, units // 2) * align if units > 1 else lo + (hi - lo) // 2
        left_ws, right_ws = workers[:half], workers[half:]
        seg_bytes_left = (mid - lo) * WIRE_BYTES_PER_VALUE
        seg_bytes_right = (hi - mid) * WIRE_BYTES_PER_VALUE
        for a, b in zip(left_ws, right_ws):
            # b ships its copy of [lo, mid) to a; a ships [mid, hi) to b.
            buffers[a][lo:mid] += buffers[b][lo:mid]
            buffers[b][mid:hi] += buffers[a][mid:hi]
            moved += seg_bytes_left + seg_bytes_right
            messages += 2
        halve(left_ws, lo, mid)
        halve(right_ws, mid, hi)

    halve(list(range(k)), 0, n)
    owned: list[np.ndarray | None] = [None] * w
    for i, (lo, hi) in segments.items():
        owned[i] = buffers[i][lo:hi]
    stats = CollectiveResult(
        steps=pre_steps + (log2_steps(k) if k > 1 else 0),
        total_bytes=moved,
        sim_seconds=lightgbm_aggregation_time(w, h, cost),
        messages=messages,
        segments=segments,
    )
    return owned, stats


def ps_aggregate(
    contributions: list[np.ndarray],
    cost: CostParams,
    n_servers: int | None = None,
    colocated: bool = True,
) -> tuple[list[np.ndarray], CollectiveResult]:
    """DimBoost-style PS aggregation: scatter slices to servers, merge there.

    Every worker cuts its histogram into ``p`` contiguous slices and sends
    slice ``j`` to server ``j`` in one batch — one logical communication
    step.  With co-located workers/servers (the paper's deployment,
    ``p == w``), each worker keeps its own slice local, giving the
    ``(w-1)/w * h * beta + (w-1) * alpha + h * gamma`` row of Table 1.

    Returns:
        (server_slices, stats): ``server_slices[j]`` is the merged slice
        held by server j; ``stats.segments[j]`` its element range.
    """
    data = _as_matrix(contributions)
    w, n = data.shape
    p = n_servers if n_servers is not None else w
    if p < 1:
        raise CommunicationError(f"n_servers must be >= 1, got {p}")
    h = n * WIRE_BYTES_PER_VALUE
    boundaries = np.linspace(0, n, p + 1).astype(np.int64)
    server_slices: list[np.ndarray] = []
    segments: dict[int, tuple[int, int]] = {}
    moved = 0
    messages = 0
    co = 1 if (colocated and p <= w) else 0
    for j in range(p):
        lo, hi = int(boundaries[j]), int(boundaries[j + 1])
        segments[j] = (lo, hi)
        merged = data[:, lo:hi].sum(axis=0)
        server_slices.append(merged)
        slice_bytes = (hi - lo) * WIRE_BYTES_PER_VALUE
        # Remote pushes into this server (its co-located worker is local).
        moved += (w - co) * slice_bytes
        messages += w - co
    if p == w and colocated:
        sim = dimboost_aggregation_time(w, h, cost)
    else:
        # General PS form, reducing to the Table 1 row when p == w:
        # per-server inbound transfer + per-worker batched latency +
        # per-server merge of w slices.
        slice_h = h / p
        sim = (w - co) * slice_h * cost.beta + (p - co) * cost.alpha + (
            w * slice_h * cost.gamma
        )
    stats = CollectiveResult(
        steps=1 if (w > 1 or p > 1) else 0,
        total_bytes=moved,
        sim_seconds=sim,
        messages=messages,
        segments=segments,
    )
    return server_slices, stats


def allreduce_rabenseifner(
    contributions: list[np.ndarray], cost: CostParams
) -> tuple[np.ndarray, CollectiveResult]:
    """Rabenseifner AllReduce: reduce-scatter + allgather.

    The large-message-optimal algorithm Section 3 cites from Thakur et
    al. — included so the analysis benches can show what XGBoost *could*
    achieve by switching algorithms (the paper's "just fixing this
    problem ... speeds up these systems by up to 2x").  Only supports
    power-of-two worker counts, like the textbook algorithm.
    """
    w = len(contributions)
    if not is_power_of_two(w):
        raise CommunicationError(
            f"Rabenseifner AllReduce requires a power-of-two worker count, got {w}"
        )
    owned, rs_stats = reduce_scatter_halving(contributions, cost)
    n = contributions[0].size
    h = n * WIRE_BYTES_PER_VALUE
    result = np.empty(n, dtype=np.float64)
    for i, seg in rs_stats.segments.items():
        lo, hi = seg
        result[lo:hi] = owned[i]  # type: ignore[index] — participants own data
    # Allgather by recursive doubling: same byte volume as the scatter.
    gather_bytes = (w - 1) * h  # w workers each collect (w-1)/w of h
    gather_time = (w - 1) / w * h * cost.beta + cost.alpha * log2_steps(w)
    stats = CollectiveResult(
        steps=rs_stats.steps + log2_steps(w),
        total_bytes=rs_stats.total_bytes + gather_bytes,
        sim_seconds=rs_stats.sim_seconds + gather_time,
        messages=rs_stats.messages + w * log2_steps(w),
        segments=rs_stats.segments,
    )
    return result, stats


def expected_halving_bytes(w: int, n_values: int) -> int:
    """Closed-form bytes moved by recursive halving (test helper).

    At recursion level ``l`` the groups partition the ``n_values`` range
    exactly and each group's ``w / 2**l`` pairs exchange the full group
    range, so level ``l`` moves ``n * w / 2**l`` values; summing the
    geometric series gives exactly ``(w - 1) * n`` values — independent of
    how odd ranges split.
    """
    if not is_power_of_two(w):
        raise CommunicationError("expected_halving_bytes: w must be a power of two")
    return (w - 1) * n_values * WIRE_BYTES_PER_VALUE
