"""Tests for the simulated clock and per-layer speed jitter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import LayerSpeedJitter, SimClock
from repro.errors import CommunicationError, ConfigError


class TestSimClock:
    def test_starts_at_zero(self):
        clock = SimClock()
        assert clock.time == 0.0
        assert clock.communication == 0.0
        assert clock.computation == 0.0

    def test_comm_and_compute_tracked_separately(self):
        clock = SimClock()
        clock.advance_comm(1.5)
        clock.advance_compute(0.5)
        assert clock.communication == pytest.approx(1.5)
        assert clock.computation == pytest.approx(0.5)
        assert clock.time == pytest.approx(2.0)

    def test_barrier_charges_max(self):
        clock = SimClock()
        charged = clock.barrier([0.1, 0.7, 0.3])
        assert charged == pytest.approx(0.7)
        assert clock.computation == pytest.approx(0.7)

    def test_barrier_empty(self):
        clock = SimClock()
        assert clock.barrier([]) == 0.0
        assert clock.time == 0.0

    def test_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(CommunicationError):
            clock.advance_comm(-1.0)
        with pytest.raises(CommunicationError):
            clock.advance_compute(-0.1)

    def test_repr(self):
        clock = SimClock()
        clock.advance_comm(1.0)
        assert "comm=1.0" in repr(clock)


class TestLayerSpeedJitter:
    def test_amplitude_validated(self):
        for amplitude in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ConfigError, match="amplitude"):
                LayerSpeedJitter(4, amplitude)
        with pytest.raises(ConfigError, match="n_workers"):
            LayerSpeedJitter(0, 0.2)

    def test_factors_within_band(self):
        jitter = LayerSpeedJitter(64, 0.3, seed=5)
        for _ in range(10):
            factors = jitter.factors
            assert np.all(factors >= 0.7) and np.all(factors <= 1.3)
            jitter.advance()

    def test_deterministic_and_keyed_by_layer(self):
        """Factors replay across runs and depend on the layer index,
        not on call order (RP001's seeded-randomness invariant)."""
        a = LayerSpeedJitter(8, 0.2, seed=3)
        b = LayerSpeedJitter(8, 0.2, seed=3)
        streams = []
        for _ in range(4):
            np.testing.assert_array_equal(a.factors, b.factors)
            streams.append(a.factors)
            a.advance()
            b.advance()
        # Different layers draw different noise...
        assert not np.array_equal(streams[0], streams[1])
        # ...and different seeds draw different streams.
        other = LayerSpeedJitter(8, 0.2, seed=4)
        assert not np.array_equal(streams[0], other.factors)

    def test_factor_of_past_roster_is_identity(self):
        jitter = LayerSpeedJitter(2, 0.2, seed=0)
        assert jitter.factor_of(2) == 1.0
        assert jitter.factor_of(-1) == 1.0


class TestSimClockJitter:
    def test_jittered_identity_without_jitter(self):
        clock = SimClock()
        assert clock.jittered([0.1, 0.2]) == [0.1, 0.2]
        assert clock.jitter_factor(0) == 1.0
        clock.next_layer()  # no-op, must not raise

    def test_jittered_divides_by_factors(self):
        jitter = LayerSpeedJitter(3, 0.25, seed=7)
        clock = SimClock(jitter=jitter)
        seconds = [0.3, 0.3, 0.3]
        expected = [
            s / jitter.factor_of(w) for w, s in enumerate(seconds)
        ]
        assert clock.jittered(seconds) == pytest.approx(expected)

    def test_barrier_charges_jittered_max(self):
        jitter = LayerSpeedJitter(3, 0.25, seed=7)
        clock = SimClock(jitter=jitter)
        seconds = [0.3, 0.3, 0.3]
        worst = max(
            s / jitter.factor_of(w) for w, s in enumerate(seconds)
        )
        assert clock.barrier(seconds) == pytest.approx(worst)
        assert clock.computation == pytest.approx(worst)

    def test_next_layer_changes_factors(self):
        clock = SimClock(jitter=LayerSpeedJitter(4, 0.3, seed=1))
        before = [clock.jitter_factor(w) for w in range(4)]
        clock.next_layer()
        after = [clock.jitter_factor(w) for w in range(4)]
        assert before != after
