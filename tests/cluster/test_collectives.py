"""Tests for the real collective implementations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    CostParams,
    allreduce_binomial,
    allreduce_rabenseifner,
    dimboost_aggregation_time,
    lightgbm_aggregation_time,
    mllib_aggregation_time,
    point_to_point_time,
    ps_aggregate,
    reduce_scatter_halving,
    reduce_to_coordinator,
    xgboost_aggregation_time,
)
from repro.cluster.collectives import WIRE_BYTES_PER_VALUE, expected_halving_bytes
from repro.cluster.costmodel import log2_steps
from repro.errors import CommunicationError

COST = CostParams(alpha=1e-4, beta=8e-9, gamma=1e-9)


def make_contributions(w: int, n: int, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.normal(size=n) for _ in range(w)]


def worker_counts():
    return st.sampled_from([1, 2, 3, 4, 5, 7, 8, 16])


class TestReduceToCoordinator:
    @settings(max_examples=20, deadline=None)
    @given(worker_counts(), st.integers(1, 64))
    def test_sum_correct(self, w, n):
        contribs = make_contributions(w, n)
        result, stats = reduce_to_coordinator(contribs, COST)
        np.testing.assert_allclose(result, np.sum(contribs, axis=0), atol=1e-9)

    def test_accounting(self):
        contribs = make_contributions(4, 100)
        _, stats = reduce_to_coordinator(contribs, COST)
        h = 100 * WIRE_BYTES_PER_VALUE
        assert stats.total_bytes == 3 * h
        assert stats.messages == 3
        assert stats.steps == 1
        assert stats.sim_seconds == pytest.approx(
            mllib_aggregation_time(4, h, COST)
        )


class TestAllReduceBinomial:
    @settings(max_examples=20, deadline=None)
    @given(worker_counts(), st.integers(1, 64))
    def test_sum_correct(self, w, n):
        contribs = make_contributions(w, n)
        result, _ = allreduce_binomial(contribs, COST)
        np.testing.assert_allclose(result, np.sum(contribs, axis=0), atol=1e-9)

    def test_steps_are_log(self):
        for w, expected in [(2, 1), (4, 2), (5, 3), (8, 3)]:
            _, stats = allreduce_binomial(make_contributions(w, 8), COST)
            assert stats.steps == expected

    def test_messages_are_w_minus_1(self):
        # A tree reduce sends exactly w - 1 messages in total.
        for w in (2, 3, 5, 8):
            _, stats = allreduce_binomial(make_contributions(w, 8), COST)
            assert stats.messages == w - 1

    def test_sim_matches_formula(self):
        h = 64 * WIRE_BYTES_PER_VALUE
        _, stats = allreduce_binomial(make_contributions(8, 64), COST)
        assert stats.sim_seconds == pytest.approx(
            xgboost_aggregation_time(8, h, COST)
        )

    def test_full_broadcast_adds_time(self):
        contribs = make_contributions(8, 64)
        _, lean = allreduce_binomial(contribs, COST)
        _, full = allreduce_binomial(contribs, COST, full_broadcast=True)
        assert full.sim_seconds > lean.sim_seconds
        assert full.total_bytes > lean.total_bytes


class TestReduceScatterHalving:
    @settings(max_examples=20, deadline=None)
    @given(worker_counts(), st.integers(2, 64))
    def test_segments_hold_global_sums(self, w, n):
        contribs = make_contributions(w, n)
        owned, stats = reduce_scatter_halving(contribs, COST)
        total = np.sum(contribs, axis=0)
        covered = np.zeros(n, dtype=bool)
        for i, (lo, hi) in stats.segments.items():
            np.testing.assert_allclose(owned[i], total[lo:hi], atol=1e-9)
            assert not covered[lo:hi].any()  # disjoint
            covered[lo:hi] = True
        assert covered.all()  # complete

    def test_power_of_two_bytes(self):
        w, n = 8, 64
        _, stats = reduce_scatter_halving(make_contributions(w, n), COST)
        assert stats.total_bytes == expected_halving_bytes(w, n)

    def test_non_power_of_two_has_prestep(self):
        _, stats = reduce_scatter_halving(make_contributions(5, 16), COST)
        assert stats.steps == 1 + log2_steps(4)
        # Folded-away worker owns nothing.
        owned, stats = reduce_scatter_halving(make_contributions(5, 16), COST)
        assert sum(seg is None for seg in owned) == 1

    def test_sim_matches_formula(self):
        for w in (4, 8, 5, 50):
            n = 128
            _, stats = reduce_scatter_halving(make_contributions(w, n), COST)
            h = n * WIRE_BYTES_PER_VALUE
            assert stats.sim_seconds == pytest.approx(
                lightgbm_aggregation_time(w, h, COST)
            )

    def test_alignment_respected(self):
        w, n, align = 4, 64, 8
        _, stats = reduce_scatter_halving(
            make_contributions(w, n), COST, align=align
        )
        for lo, hi in stats.segments.values():
            assert lo % align == 0
            assert hi % align == 0 or hi == n

    def test_alignment_validation(self):
        with pytest.raises(CommunicationError):
            reduce_scatter_halving(make_contributions(2, 10), COST, align=3)


class TestPSAggregate:
    @settings(max_examples=20, deadline=None)
    @given(worker_counts(), st.integers(1, 64), st.integers(1, 6))
    def test_server_slices_sum(self, w, n, p):
        contribs = make_contributions(w, n)
        slices, stats = ps_aggregate(contribs, COST, n_servers=p)
        total = np.sum(contribs, axis=0)
        rebuilt = np.concatenate(slices)
        np.testing.assert_allclose(rebuilt, total, atol=1e-9)

    def test_one_step(self):
        _, stats = ps_aggregate(make_contributions(4, 32), COST)
        assert stats.steps == 1

    def test_sim_matches_table1_when_colocated(self):
        w, n = 8, 64
        _, stats = ps_aggregate(make_contributions(w, n), COST)
        h = n * WIRE_BYTES_PER_VALUE
        assert stats.sim_seconds == pytest.approx(
            dimboost_aggregation_time(w, h, COST)
        )

    def test_colocation_saves_messages(self):
        contribs = make_contributions(4, 32)
        _, co = ps_aggregate(contribs, COST, colocated=True)
        _, remote = ps_aggregate(contribs, COST, colocated=False)
        assert co.messages < remote.messages
        assert co.sim_seconds < remote.sim_seconds

    def test_fewer_servers_slower(self):
        """Table 4's trend: shrinking p inflates per-server transfer.

        Holds in the transfer-dominated regime (large histograms, the
        Table 4 setting); with tiny messages latency dominates instead.
        """
        contribs = make_contributions(16, 500_000)
        times = []
        for p in (16, 4, 1):
            _, stats = ps_aggregate(contribs, COST, n_servers=p)
            times.append(stats.sim_seconds)
        assert times[0] < times[1] < times[2]

    def test_invalid_servers(self):
        with pytest.raises(CommunicationError):
            ps_aggregate(make_contributions(2, 8), COST, n_servers=0)


class TestRabenseifner:
    def test_sum_correct(self):
        contribs = make_contributions(8, 100)
        result, _ = allreduce_rabenseifner(contribs, COST)
        np.testing.assert_allclose(result, np.sum(contribs, axis=0), atol=1e-9)

    def test_beats_binomial_for_large_messages(self):
        """The Section 3 point: the large-message algorithm wins."""
        contribs = make_contributions(16, 500_000)
        _, rab = allreduce_rabenseifner(contribs, COST)
        _, bin_ = allreduce_binomial(contribs, COST, full_broadcast=True)
        assert rab.sim_seconds < bin_.sim_seconds

    def test_requires_power_of_two(self):
        with pytest.raises(CommunicationError):
            allreduce_rabenseifner(make_contributions(5, 8), COST)


class TestValidation:
    def test_empty_contributions(self):
        with pytest.raises(CommunicationError):
            reduce_to_coordinator([], COST)

    def test_shape_mismatch(self):
        with pytest.raises(CommunicationError):
            reduce_to_coordinator([np.zeros(3), np.zeros(4)], COST)

    def test_requires_1d(self):
        with pytest.raises(CommunicationError):
            reduce_to_coordinator([np.zeros((2, 2))], COST)

    def test_point_to_point(self):
        assert point_to_point_time(100, COST) == pytest.approx(
            COST.alpha + 100 * COST.beta
        )
        with pytest.raises(CommunicationError):
            point_to_point_time(-1, COST)
