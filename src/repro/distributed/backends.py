"""Aggregation backends: how each system merges histograms and finds splits.

A backend receives, node by node, the per-worker local gradient
histograms in feature-major flat form, performs its system's aggregation
(real data movement through :mod:`repro.cluster.collectives` or the
parameter server), and later answers split queries for a whole layer —
charging the simulated clock for every byte moved and every second of
(measured) split-scan compute, attributed to the worker/server that would
have performed it.

With compression off, every backend produces bit-equal merged histograms
(up to float summation order), so all five systems grow identical trees;
the backends differ in *time*, which is the paper's claim.
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod

import numpy as np

from ..cluster.collectives import (
    allreduce_binomial,
    point_to_point_time,
    reduce_scatter_halving,
    reduce_to_coordinator,
)
from ..cluster.costmodel import CostParams, log2_steps
from ..cluster.simclock import SimClock
from ..compression.lowprec import (
    compress_blocked,
    compress_flat,
    decompress_blocked,
    decompress_flat,
)
from ..config import ClusterConfig, TrainConfig
from ..errors import ConfigError, TrainingError
from ..ps.group import ParameterServerGroup
from ..ps.localagg import LocalAggregator
from ..ps.partitioner import Partition
from ..ps.slab import CompressedSlab, SlabLayout, SparseSlab, compress_slab, slab_from_flat
from ..sketch.candidates import CandidateSet
from ..tree.split import SplitDecision, best_split_in_range, combine_shard_decisions
from ..utils.rng import spawn_rng
from ..utils.timing import wall_clock
from .scheduler import (
    RoundRobinScheduler,
    SingleAgentScheduler,
    SpeedWeightedScheduler,
)

#: Registry of backend names in the paper's comparison order.
BACKEND_NAMES = ("mllib", "xgboost", "lightgbm", "tencentboost", "dimboost")

#: Bytes of one split decision on the wire (Section 6.3: one int + floats).
DECISION_BYTES = 28


def general_ps_push_time(
    w: int, p: int, h: float, cost: CostParams, colocated: bool = True
) -> float:
    """PS aggregation time for ``w`` workers pushing ``h`` bytes to ``p`` servers.

    Reduces to the Table 1 DimBoost row when ``p == w`` and co-located:
    per-server inbound transfer ``(w-1) * h/p * beta``, batched per-worker
    latency ``(p-1) * alpha``, and per-server merge ``w * h/p * gamma``.
    """
    if w < 1 or p < 1:
        raise TrainingError(f"w and p must be >= 1, got w={w}, p={p}")
    co = 1 if (colocated and p <= w) else 0
    slice_h = h / p
    return (
        (w - co) * slice_h * cost.beta
        + (p - co) * cost.alpha
        + w * slice_h * cost.gamma
    )


class AggregationBackend(ABC):
    """Base class wiring the shared layout knowledge.

    Subclasses implement :meth:`aggregate_node` (merge one node's local
    histograms, charging communication) and :meth:`find_splits` (decide
    the splits of a whole layer, charging split-finding communication and
    compute).
    """

    name: str = "abstract"
    #: Preferred histogram build mode, resolved to a
    #: :class:`~repro.runtime.build.HistogramBuildStrategy` by the engine
    #: (Section 5.1: DimBoost is the first system to exploit sparsity
    #: there, so it alone defaults to "sparse").
    build_mode: str = "dense"
    #: Whether the backend accepts sparse histogram slabs — the
    #: block-distributed (feature-striped) aggregation path.  Only PS
    #: backends can: the server reconstructs absent features from the
    #: slab sums, which collectives have no place to do.
    supports_slab_push: bool = False
    #: Whether the backend accepts locally-aggregated windowed pushes
    #: (``TrainConfig.agg_window > 1``).  PS backends only — collectives
    #: have no server-side seq-token seam to deduplicate a window on.
    supports_windowed_push: bool = False

    def __init__(
        self,
        cluster: ClusterConfig,
        config: TrainConfig,
        candidates: CandidateSet,
    ) -> None:
        self.cluster = cluster
        self.config = config
        self.candidates = candidates
        self.cost = CostParams(
            cluster.network.alpha, cluster.network.beta, cluster.network.gamma
        )
        self.n_bins = candidates.max_bins
        self.n_features = candidates.n_features
        self.flat_len = 2 * self.n_features * self.n_bins
        self.flat_bytes = self.flat_len * 4
        self._tree_index = -1

    @property
    def dense_build(self) -> bool:
        """Back-compat boolean view of :attr:`build_mode`."""
        return self.build_mode == "dense"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def begin_tree(self, tree_index: int) -> None:
        """Reset per-tree state."""
        self._tree_index = tree_index

    @abstractmethod
    def aggregate_node(
        self, node: int, local_flats: list[np.ndarray], clock: SimClock
    ) -> None:
        """Merge one node's per-worker flat histograms."""

    def aggregate_node_slabs(
        self,
        node: int,
        slabs: list[tuple[int, SparseSlab]],
        clock: SimClock,
    ) -> None:
        """Merge one node's per-block sparse slabs (2-D sharding path).

        ``slabs`` holds ``(block_id, slab)`` pairs in block (worker-id)
        order.  Backends that cannot reconstruct absent features —
        everything but the parameter servers — reject the call.
        """
        raise TrainingError(
            f"backend {self.name!r} does not support sparse slab "
            f"aggregation; feature-striped grids (cols > 1) need a "
            f"parameter-server backend (tencentboost, dimboost)"
        )

    @abstractmethod
    def find_splits(
        self,
        nodes: list[int],
        feature_valid: np.ndarray | None,
        clock: SimClock,
    ) -> dict[int, SplitDecision | None]:
        """Best split per node for an aggregated layer."""

    def end_tree(self, clock: SimClock) -> None:
        """Release per-tree storage (default: nothing)."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def _scan_flat(
        self, flat: np.ndarray, feature_valid: np.ndarray | None
    ) -> SplitDecision | None:
        """Whole-histogram split scan (Algorithm 1 lines 10-17)."""
        return best_split_in_range(
            flat,
            0,
            self.n_features,
            self.candidates,
            self.config.reg_lambda,
            self.config.reg_gamma,
            self.config.min_child_weight,
            feature_valid,
        )

    def _charge_decision_broadcast(self, clock: SimClock, n_nodes: int) -> None:
        """Ship the (tiny) split decisions to all workers."""
        w = self.cluster.n_workers
        clock.advance_comm(
            (w - 1) * point_to_point_time(n_nodes * DECISION_BYTES, self.cost)
            if w > 1
            else 0.0,
            phase="FIND_SPLIT",
        )


class MLlibBackend(AggregationBackend):
    """All-to-one reduce; the coordinator finds every split (Section 2.3).

    "statistics are collected to a particular worker node via a
    reduceByKey operator" and "statistics aggregation is the bottleneck".
    """

    name = "mllib"
    build_mode = "dense"

    def __init__(self, cluster, config, candidates) -> None:
        super().__init__(cluster, config, candidates)
        self._merged: dict[int, np.ndarray] = {}

    def aggregate_node(self, node, local_flats, clock) -> None:
        merged, stats = reduce_to_coordinator(local_flats, self.cost)
        clock.advance_comm(stats.sim_seconds, phase="FIND_SPLIT")
        self._merged[node] = merged

    def find_splits(self, nodes, feature_valid, clock):
        decisions: dict[int, SplitDecision | None] = {}
        started = wall_clock()
        for node in nodes:
            decisions[node] = self._scan_flat(self._merged.pop(node), feature_valid)
        # One coordinator scans every node serially: no parallelism.
        clock.advance_compute(wall_clock() - started, phase="FIND_SPLIT")
        self._charge_decision_broadcast(clock, len(nodes))
        return decisions


class XGBoostBackend(AggregationBackend):
    """Binomial-tree AllReduce; the root worker finds splits (Section 2.3)."""

    name = "xgboost"
    build_mode = "dense"

    def __init__(self, cluster, config, candidates) -> None:
        super().__init__(cluster, config, candidates)
        self._merged: dict[int, np.ndarray] = {}

    def aggregate_node(self, node, local_flats, clock) -> None:
        merged, stats = allreduce_binomial(local_flats, self.cost)
        clock.advance_comm(stats.sim_seconds, phase="FIND_SPLIT")
        self._merged[node] = merged

    def find_splits(self, nodes, feature_valid, clock):
        decisions: dict[int, SplitDecision | None] = {}
        started = wall_clock()
        for node in nodes:
            decisions[node] = self._scan_flat(self._merged.pop(node), feature_valid)
        clock.advance_compute(wall_clock() - started, phase="FIND_SPLIT")
        # Up-bottom broadcast of the model update along the tree.
        w = self.cluster.n_workers
        clock.advance_comm(
            log2_steps(w)
            * point_to_point_time(len(nodes) * DECISION_BYTES, self.cost),
            phase="FIND_SPLIT",
        )
        return decisions


class LightGBMBackend(AggregationBackend):
    """Recursive-halving ReduceScatter; distributed split finding.

    Each worker ends the aggregation owning a fully merged feature range
    and finds the best split within it; the per-range optima (tiny) are
    allgathered and the global maximum chosen — LightGBM's data-parallel
    voting-free protocol.
    """

    name = "lightgbm"
    build_mode = "dense"

    def __init__(self, cluster, config, candidates) -> None:
        super().__init__(cluster, config, candidates)
        if self.n_features < cluster.n_workers:
            raise TrainingError(
                "LightGBM backend needs at least one feature per worker "
                f"(features={self.n_features}, workers={cluster.n_workers})"
            )
        self._owned: dict[int, tuple[list[np.ndarray | None], dict[int, tuple[int, int]]]] = {}

    def aggregate_node(self, node, local_flats, clock) -> None:
        owned, stats = reduce_scatter_halving(
            local_flats, self.cost, align=2 * self.n_bins
        )
        clock.advance_comm(stats.sim_seconds, phase="FIND_SPLIT")
        self._owned[node] = (owned, stats.segments)

    def find_splits(self, nodes, feature_valid, clock):
        per_worker_seconds = [0.0] * self.cluster.n_workers
        decisions: dict[int, SplitDecision | None] = {}
        block = 2 * self.n_bins
        for node in nodes:
            owned, segments = self._owned.pop(node)
            shard_decisions: list[SplitDecision | None] = []
            for worker_id, (lo, hi) in segments.items():
                started = wall_clock()
                shard_decisions.append(
                    best_split_in_range(
                        owned[worker_id],
                        lo // block,
                        hi // block,
                        self.candidates,
                        self.config.reg_lambda,
                        self.config.reg_gamma,
                        self.config.min_child_weight,
                        feature_valid,
                    )
                )
                per_worker_seconds[worker_id] += wall_clock() - started
            decisions[node] = combine_shard_decisions(shard_decisions)
        # Workers scan their ranges in parallel; barrier on the slowest.
        clock.barrier(
            [
                seconds / self.cluster.speed_of(wid)
                for wid, seconds in enumerate(per_worker_seconds)
            ],
            phase="FIND_SPLIT",
        )
        # Allgather of the per-range optima: log w exchange steps of tiny
        # messages, as in the halving topology run backwards.
        clock.advance_comm(
            log2_steps(self.cluster.n_workers)
            * point_to_point_time(len(nodes) * DECISION_BYTES, self.cost),
            phase="FIND_SPLIT",
        )
        return decisions


def _ps_aggregate_slabs(
    backend: "AggregationBackend", node: int, slabs, clock: SimClock
) -> None:
    """Shared PS slab aggregation: push every block's slab, charge wires.

    Pushes run in block (worker-id) order so the servers accumulate each
    feature's histogram in the same addend order as the dense row-sharded
    pushes — the bit-identity contract.  The batched scatter is charged
    with the *actual* average slab bytes, so sparsity directly shrinks
    the transfer term of the cost model.

    Backends exposing ``compression_bits`` (DimBoost) also quantize each
    slab's value payload: the rng is spawned per ``(tree, node, block)``
    — the same spawn key a rollback-replay re-derives — and compression
    happens once per slab before the partition fan-out, so retries,
    duplicates, and replays all move the identical packed payload.
    """
    if not slabs:
        raise TrainingError(f"node {node}: no slabs to aggregate")
    bits = getattr(backend, "compression_bits", 0)
    block_size = getattr(backend, "compression_block", None)
    total_bytes = 0
    for block_id, slab in slabs:
        rng = (
            spawn_rng(
                backend.config.seed, "lowprec", backend._tree_index, node, block_id
            )
            if bits
            else None
        )
        stats = backend.group.push_slab(
            "grad_hist",
            node,
            slab,
            compression_bits=bits,
            rng=rng,
            compression_block=block_size,
            seq=(backend._tree_index, block_id),
            worker=block_id,
        )
        total_bytes += stats.bytes_up
    clock.advance_comm(
        general_ps_push_time(
            len(slabs),
            backend.cluster.n_servers,
            total_bytes / len(slabs),
            backend.cost,
            backend.cluster.colocated,
        ),
        phase="FIND_SPLIT",
    )


class _PieceWindowBuffer:
    """Window buffer of pre-encoded dense row pieces for one worker.

    The dense lossy codec is partition-scoped (``push_row`` quantizes
    each partition slice in partition order), so compressed dense deltas
    are encoded *at buffer time* with their canonical rng streams and
    windowing only batches their delivery.  Mirrors the
    :class:`~repro.ps.localagg.LocalAggregator` window accounting so the
    ``(tree, window, worker)`` token sequence is deterministic.
    """

    def __init__(self, window: int) -> None:
        self.window = window
        self.pending = 0
        self.windows_flushed = 0
        self._pieces: list[tuple[int, int, np.ndarray, int]] = []

    @property
    def full(self) -> bool:
        return self.pending >= self.window

    def add(self, pieces: list[tuple[int, int, np.ndarray, int]]) -> bool:
        """Buffer one delta's pieces; returns whether the window filled."""
        self._pieces.extend(pieces)
        self.pending += 1
        return self.full

    def drain(self) -> tuple[int, list[tuple[int, int, np.ndarray, int]]]:
        if not self._pieces:
            return self.windows_flushed, []
        index = self.windows_flushed
        self.windows_flushed += 1
        pieces, self._pieces = self._pieces, []
        self.pending = 0
        return index, pieces

    def reset(self) -> None:
        self._pieces = []
        self.pending = 0
        self.windows_flushed = 0


class _WindowedPushMixin:
    """Local histogram aggregation for PS backends (``agg_window > 1``).

    Instead of pushing every node delta as it is built, each worker
    folds deltas into its :class:`~repro.ps.localagg.LocalAggregator`
    and the cluster communicates once per aggregation window — the
    Horovod ``LocalGradientAggregationHelper`` pattern applied to
    histogram slabs.  Dense per-worker flats are wrapped in *fully
    present* slabs (every feature carries its exact values) so the
    closed-form header reconstruction never fires for them and the
    stored bits match the dense push exactly; the 2-D grid path buffers
    the engine's sparse slabs as-is.

    One windowed push per worker carries that worker's folded entries,
    encoded once (PR 7 codec) before the partition fan-out, under the
    sequence token ``(tree, window_index, worker)``.  All aggregators
    fill in lockstep (every node contributes one delta per worker), so
    a full window flushes the whole cluster together and is charged as
    one batched PS scatter — the latency term shrinks by the window
    size while the volume terms keep the folded payload mass.

    The one path that cannot fold-then-encode is the compressed *dense*
    push: its codec quantizes per partition slice with a rounding
    stream consumed in partition order, so folding first would change
    the stored bits.  There, each delta is encoded at buffer time
    exactly as :meth:`~repro.ps.group.ParameterServerGroup.push_row`
    would encode it and the window batches the pre-encoded pieces
    (:meth:`~repro.ps.group.ParameterServerGroup.push_window_rows`) —
    the S=0 bit-identity guarantee holds in every cell of the parity
    matrix.
    """

    # Provided by the concrete backend / base class.  Backends with a
    # lossy dense codec (``compression_bits > 0``) additionally provide
    # ``compression_block``, ``_node_sums``, and ``_unfold_zero_buckets``
    # — the compressed-dense buffering path mirrors their per-delta
    # push_row bookkeeping.
    group: ParameterServerGroup
    cluster: ClusterConfig
    config: TrainConfig
    cost: CostParams
    n_bins: int
    n_features: int
    _tree_index: int
    _node_sums: dict[int, tuple[float, float]]

    supports_windowed_push: bool = True

    def _init_windowing(self, layout: SlabLayout) -> None:
        self._layout = layout
        windowed = self.config.agg_window > 1
        self._aggregators: list[LocalAggregator] = (
            [
                LocalAggregator(self.config.agg_window, layout)
                for _ in range(self.cluster.n_workers)
            ]
            if windowed
            else []
        )
        self._piece_buffers: list[_PieceWindowBuffer] = (
            [
                _PieceWindowBuffer(self.config.agg_window)
                for _ in range(self.cluster.n_workers)
            ]
            if windowed
            else []
        )
        self._all_features = np.arange(self.n_features, dtype=np.int64)

    @property
    def windowed(self) -> bool:
        """Whether local aggregation is active (``agg_window > 1``)."""
        return bool(self._aggregators)

    def begin_tree(self, tree_index: int) -> None:
        super().begin_tree(tree_index)  # type: ignore[misc]
        # Rewind window counters so a chaos rollback-replay regenerates
        # the identical (tree, window, worker) token sequence.
        for aggregator in self._aggregators:
            aggregator.reset()
        for buffer in self._piece_buffers:
            buffer.reset()

    def _buffer_node_flats(
        self, node: int, local_flats: list[np.ndarray], clock: SimClock
    ) -> None:
        if getattr(self, "compression_bits", 0):
            self._buffer_compressed_flats(node, local_flats, clock)
            return
        for aggregator, flat in zip(self._aggregators, local_flats):
            slab = slab_from_flat(
                flat,
                self._all_features,
                0,
                self.n_features,
                self.n_bins,
                float(flat[: self.n_bins].sum()),
                float(flat[self.n_bins : 2 * self.n_bins].sum()),
            )
            aggregator.add(node, slab)
        self._maybe_flush_windows(clock)

    def _buffer_compressed_flats(
        self, node: int, local_flats: list[np.ndarray], clock: SimClock
    ) -> None:
        """Buffer compressed dense deltas as pre-encoded pieces.

        Each delta is unfolded and quantized exactly as the per-node
        ``push_row`` path does — same rng spawn key, same partition
        slices, same rounding-stream consumption order — so the batched
        window stores bit-identical floats.  The exact node sums are
        recorded for the split-time refold, matching the unwindowed
        bookkeeping.
        """
        bits = self.compression_bits
        block = self.compression_block
        partitioner = self.group.partitioner("grad_hist")
        total_g = 0.0
        total_h = 0.0
        for worker_id, flat in enumerate(local_flats):
            rng = spawn_rng(
                self.config.seed, "lowprec", self._tree_index, node, worker_id
            )
            unfolded, sum_g, sum_h = self._unfold_zero_buckets(flat)
            total_g += sum_g
            total_h += sum_h
            pieces: list[tuple[int, int, np.ndarray, int]] = []
            for part in partitioner.partitions:
                piece = unfolded[part.lo : part.hi]
                if block:
                    blocked = compress_blocked(piece, block, bits, rng)
                    piece_bytes = blocked.wire_bytes
                    piece = decompress_blocked(blocked)
                else:
                    compressed = compress_flat(piece, bits, rng)
                    piece_bytes = compressed.wire_bytes
                    piece = decompress_flat(compressed)
                pieces.append((node, part.partition_id, piece, piece_bytes))
            self._piece_buffers[worker_id].add(pieces)
        self._node_sums[node] = (total_g, total_h)
        self._maybe_flush_windows(clock)

    def _buffer_node_slabs(
        self, node: int, slabs: list[tuple[int, SparseSlab]], clock: SimClock
    ) -> None:
        for block_id, slab in slabs:
            self._aggregators[block_id].add(node, slab)
        self._maybe_flush_windows(clock)

    def _maybe_flush_windows(self, clock: SimClock) -> None:
        if self._aggregators and (
            self._aggregators[0].full or self._piece_buffers[0].full
        ):
            self._flush_windows(clock)

    def _flush_windows(self, clock: SimClock) -> None:
        """Push every worker's buffered window and charge one scatter.

        Called when the lockstep windows fill, and with partial buffers
        from :meth:`find_splits` — a layer boundary drains stragglers so
        a window never spans layers (split finding needs every delta).
        """
        bits = getattr(self, "compression_bits", 0)
        block_size = getattr(self, "compression_block", None)
        pushed: list[int] = []
        for worker_id, buffer in enumerate(self._piece_buffers):
            if buffer.pending == 0:
                continue
            n_deltas = buffer.pending
            window_index, pieces = buffer.drain()
            stats = self.group.push_window_rows(
                "grad_hist",
                pieces,
                seq=(self._tree_index, window_index, worker_id),
                worker=worker_id,
            )
            # The 8 bytes per delta ship the exact node sums, matching
            # the per-delta compressed push accounting.
            pushed.append(stats.bytes_up + 8 * n_deltas)
        for worker_id, aggregator in enumerate(self._aggregators):
            if aggregator.pending == 0:
                continue
            window_index, entries = aggregator.drain()
            wire_entries: list[tuple[int, SparseSlab | CompressedSlab]] = []
            for node, slab in entries:
                if bits:
                    rng = spawn_rng(
                        self.config.seed,
                        "lowprec",
                        self._tree_index,
                        node,
                        worker_id,
                    )
                    wire_entries.append(
                        (
                            node,
                            compress_slab(
                                slab, self._layout, bits, rng, block_size
                            ),
                        )
                    )
                else:
                    wire_entries.append((node, slab))
            stats = self.group.push_window(
                "grad_hist",
                wire_entries,
                seq=(self._tree_index, window_index, worker_id),
                worker=worker_id,
            )
            pushed.append(stats.bytes_up)
        if pushed:
            clock.advance_comm(
                general_ps_push_time(
                    len(pushed),
                    self.cluster.n_servers,
                    sum(pushed) / len(pushed),
                    self.cost,
                    self.cluster.colocated,
                ),
                phase="FIND_SPLIT",
            )


class TencentBoostBackend(_WindowedPushMixin, AggregationBackend):
    """Parameter server without DimBoost's FIND_SPLIT optimizations.

    TencentBoost "simply applies the parameter server architecture to
    GBDT" (Section 8): histograms are pushed to servers (efficient
    aggregation), but one leader worker pulls every node's *full* merged
    histogram back and finds all splits itself — no scheduler, no
    two-phase split, no compression.

    ``fabric`` (both PS backends): optional ``chaos.FaultyFabric`` the
    server group routes every message through; pushes then carry a
    ``(tree_index, worker_id)`` sequence token so retried or duplicated
    deliveries never double-count a histogram.
    """

    name = "tencentboost"
    build_mode = "dense"
    supports_slab_push = True

    def __init__(self, cluster, config, candidates, fabric=None) -> None:
        super().__init__(cluster, config, candidates)
        self.group = ParameterServerGroup(cluster.n_servers, fabric=fabric)
        layout = SlabLayout(self.n_features, self.n_bins, candidates.zero_bins)
        self.group.register(
            "grad_hist",
            self.flat_len,
            align=2 * self.n_bins,
            layout=layout,
        )
        self._init_windowing(layout)

    def aggregate_node(self, node, local_flats, clock) -> None:
        if self.windowed:
            self._buffer_node_flats(node, local_flats, clock)
            return
        for worker_id, flat in enumerate(local_flats):
            self.group.push_row(
                "grad_hist",
                node,
                flat,
                seq=(self._tree_index, worker_id),
                worker=worker_id,
            )
        clock.advance_comm(
            general_ps_push_time(
                len(local_flats),
                self.cluster.n_servers,
                self.flat_bytes,
                self.cost,
                self.cluster.colocated,
            ),
            phase="FIND_SPLIT",
        )

    def aggregate_node_slabs(self, node, slabs, clock) -> None:
        if self.windowed:
            self._buffer_node_slabs(node, slabs, clock)
            return
        _ps_aggregate_slabs(self, node, slabs, clock)

    def find_splits(self, nodes, feature_valid, clock):
        if self.windowed:
            self._flush_windows(clock)
        decisions: dict[int, SplitDecision | None] = {}
        p = self.cluster.n_servers
        leader_seconds = 0.0
        leader = 0  # the paper's "leader worker" pulls and scans everything
        for node in nodes:
            flat, _stats = self.group.pull_row("grad_hist", node, worker=leader)
            # Full-histogram pull serialized at the leader's NIC.
            clock.advance_comm(
                p * self.cost.alpha + self.flat_bytes * self.cost.beta,
                phase="FIND_SPLIT",
            )
            started = wall_clock()
            decisions[node] = self._scan_flat(flat, feature_valid)
            leader_seconds += wall_clock() - started
            self.group.clear_row("grad_hist", node)
        clock.advance_compute(leader_seconds, phase="FIND_SPLIT")
        self._charge_decision_broadcast(clock, len(nodes))
        return decisions


class DimBoostBackend(_WindowedPushMixin, AggregationBackend):
    """The full DimBoost FIND_SPLIT pipeline (Sections 6.1-6.3).

    Compression detail: Algorithm 2 accumulates the exact gradient sums
    ``sum_g, sum_h`` and only folds them into the zero buckets at the
    end.  Every feature's hessian zero bucket therefore carries O(N)
    mass while ordinary buckets carry O(N * z / (M * K)) — quantizing
    the folded histogram would set the fixed-point scale ``|c|`` from
    the giant zero buckets and drown every other bucket in noise.  So
    when compression is on, workers push the *pre-fold* histogram (all
    buckets small, high SNR) plus the two exact sums, and the zero
    buckets are re-folded from the aggregated node totals at split time.
    With compression off the folded histogram is pushed directly, which
    keeps bit-identical parity with the other backends.

    Args:
        use_scheduler: Round-robin node assignment (True) or the naive
            single-agent strategy (False) — Table 3's scheduler ablation.
        two_phase: Server-side split UDF + tiny replies (True) or full
            histogram pulls by the responsible worker (False).
        compression_bits: Fixed-point width for pushed histograms
            (0 disables compression).
    """

    name = "dimboost"
    build_mode = "sparse"  # sparsity-aware histogram construction (C3)
    supports_slab_push = True

    def __init__(
        self,
        cluster,
        config,
        candidates,
        use_scheduler: bool = True,
        two_phase: bool = True,
        compression_bits: int | None = None,
        speed_aware_scheduler: bool = False,
        fabric=None,
    ) -> None:
        super().__init__(cluster, config, candidates)
        self.group = ParameterServerGroup(cluster.n_servers, fabric=fabric)
        layout = SlabLayout(self.n_features, self.n_bins, candidates.zero_bins)
        self.group.register(
            "grad_hist",
            self.flat_len,
            align=2 * self.n_bins,
            layout=layout,
        )
        self._init_windowing(layout)
        self.use_scheduler = use_scheduler
        self.two_phase = two_phase
        self.compression_bits = (
            config.compression_bits if compression_bits is None else compression_bits
        )
        # One scale per per-feature g/h histogram by default (Section
        # 6.1's "the maximal absolute value in the histogram");
        # config.compression_block overrides the granularity.
        self.compression_block = (
            config.compression_block if config.compression_block else self.n_bins
        )
        if (2 * self.n_bins) % self.compression_block != 0:
            raise ConfigError(
                f"compression_block {self.compression_block} must divide the "
                f"per-feature histogram width {2 * self.n_bins}"
            )
        if not use_scheduler:
            self.scheduler = SingleAgentScheduler(cluster.n_workers)
        elif speed_aware_scheduler:
            speeds = [cluster.speed_of(wid) for wid in range(cluster.n_workers)]
            self.scheduler = SpeedWeightedScheduler(cluster.n_workers, speeds)
        else:
            self.scheduler = RoundRobinScheduler(cluster.n_workers)
        self._push_bytes: dict[int, list[int]] = {}
        # Flat slots of every feature's zero bucket (g and h halves).
        block = 2 * self.n_bins
        self._zero_slots_g = (
            np.arange(self.n_features, dtype=np.int64) * block
            + candidates.zero_bins.astype(np.int64)
        )
        self._zero_slots_h = self._zero_slots_g + self.n_bins
        #: Aggregated exact (sum_g, sum_h) per node, refolded at split time.
        self._node_sums: dict[int, tuple[float, float]] = {}

    def begin_tree(self, tree_index: int) -> None:
        super().begin_tree(tree_index)
        self._node_sums.clear()

    def _unfold_zero_buckets(self, flat: np.ndarray) -> tuple[np.ndarray, float, float]:
        """Remove the Algorithm 2 zero-bucket fold from a local histogram.

        Returns (pre-fold flat copy, sum_g, sum_h); the sums travel as two
        exact floats alongside the compressed payload.
        """
        sum_g = float(flat[: self.n_bins].sum())  # any feature row's total
        sum_h = float(flat[self.n_bins : 2 * self.n_bins].sum())
        unfolded = np.array(flat, dtype=np.float64, copy=True)
        unfolded[self._zero_slots_g] -= sum_g
        unfolded[self._zero_slots_h] -= sum_h
        return unfolded, sum_g, sum_h

    def _fold_zero_buckets(
        self, flat: np.ndarray, lo: int, hi: int, sum_g: float, sum_h: float
    ) -> np.ndarray:
        """Re-apply the zero-bucket fold over feature range ``[lo, hi)``
        elements of the stored (pre-fold) histogram."""
        block = 2 * self.n_bins
        f_lo = lo // block
        f_hi = hi // block
        folded = np.array(flat, dtype=np.float64, copy=True)
        folded[self._zero_slots_g[f_lo:f_hi] - lo] += sum_g
        folded[self._zero_slots_h[f_lo:f_hi] - lo] += sum_h
        return folded

    def aggregate_node(self, node, local_flats, clock) -> None:
        if self.windowed:
            # Buffer the *folded* flats: the windowed wire path is slabs,
            # where compress_slab itself unfolds the zero-bucket mass
            # before encoding (and refolds it exactly on decode), so the
            # servers store folded histograms and no _node_sums refold
            # entry is needed at split time.
            self._buffer_node_flats(node, local_flats, clock)
            return
        pushed: list[int] = []
        total_g = 0.0
        total_h = 0.0
        for worker_id, flat in enumerate(local_flats):
            if self.compression_bits:
                rng = spawn_rng(
                    self.config.seed, "lowprec", self._tree_index, node, worker_id
                )
                flat, sum_g, sum_h = self._unfold_zero_buckets(flat)
                total_g += sum_g
                total_h += sum_h
            else:
                rng = None
            stats = self.group.push_row(
                "grad_hist",
                node,
                flat,
                compression_bits=self.compression_bits,
                rng=rng,
                compression_block=self.compression_block,
                seq=(self._tree_index, worker_id),
                worker=worker_id,
            )
            pushed.append(stats.bytes_up + (8 if self.compression_bits else 0))
        if self.compression_bits:
            self._node_sums[node] = (total_g, total_h)
        # Charge the batched PS scatter with the *actual* wire bytes, so
        # compression directly shrinks the transfer term.
        avg_bytes = sum(pushed) / len(pushed)
        clock.advance_comm(
            general_ps_push_time(
                len(local_flats),
                self.cluster.n_servers,
                avg_bytes,
                self.cost,
                self.cluster.colocated,
            ),
            phase="FIND_SPLIT",
        )
        self._push_bytes[node] = pushed

    def aggregate_node_slabs(self, node, slabs, clock) -> None:
        # With compression on, each slab's value payload is quantized
        # once before the partition fan-out (see _ps_aggregate_slabs);
        # the exact header sums still reconstruct absent features with
        # no quantization at all, and the servers store the *folded*
        # histogram directly, so no _node_sums refold entry is needed.
        if self.windowed:
            self._buffer_node_slabs(node, slabs, clock)
            return
        _ps_aggregate_slabs(self, node, slabs, clock)

    def _make_udf(self, feature_valid: np.ndarray | None, node: int):
        """Server-side split UDF over one stored feature range of ``node``."""
        block = 2 * self.n_bins
        candidates = self.candidates
        config = self.config
        sums = self._node_sums.get(node)

        def udf(values: np.ndarray, partition: Partition) -> SplitDecision | None:
            if sums is not None:
                values = self._fold_zero_buckets(
                    values, partition.lo, partition.hi, sums[0], sums[1]
                )
            return best_split_in_range(
                values,
                partition.lo // block,
                partition.hi // block,
                candidates,
                config.reg_lambda,
                config.reg_gamma,
                config.min_child_weight,
                feature_valid,
            )

        return udf

    def find_splits(self, nodes, feature_valid, clock):
        if self.windowed:
            # Drain partial windows: a layer boundary must see every
            # delta, so windows never span layers.
            self._flush_windows(clock)
        if (
            isinstance(self.scheduler, SpeedWeightedScheduler)
            and clock.jitter is not None
        ):
            # Track the rotating straggler: assignment weights use this
            # layer's effective speeds, not the static average.
            self.scheduler.update_speeds(
                [
                    self.cluster.speed_of(wid) * clock.jitter_factor(wid)
                    for wid in range(self.cluster.n_workers)
                ]
            )
        assignment = self.scheduler.assign(nodes)
        decisions: dict[int, SplitDecision | None] = {}
        per_worker_seconds = [0.0] * self.cluster.n_workers
        p = self.cluster.n_servers

        for worker_id, its_nodes in assignment.items():
            comm_seconds = 0.0
            for node in its_nodes:
                if self.two_phase:
                    udf = self._make_udf(feature_valid, node)
                    started = wall_clock()
                    results, _stats = self.group.pull_row_udf(
                        "grad_hist",
                        node,
                        udf,
                        result_bytes=DECISION_BYTES,
                        worker=worker_id,
                    )
                    scan_wall = wall_clock() - started
                    decisions[node] = combine_shard_decisions(
                        [decision for _part, decision in results]
                    )
                    # The p servers scan their ranges concurrently; the
                    # in-process wall time covers all of them, so one
                    # server's share is wall / p.
                    per_worker_seconds[worker_id] += scan_wall / p
                    comm_seconds += p * point_to_point_time(DECISION_BYTES, self.cost)
                else:
                    flat, _stats = self.group.pull_row(
                        "grad_hist", node, worker=worker_id
                    )
                    comm_seconds += p * self.cost.alpha + (
                        self.flat_bytes * self.cost.beta
                    )
                    sums = self._node_sums.get(node)
                    if sums is not None:
                        flat = self._fold_zero_buckets(
                            flat, 0, self.flat_len, sums[0], sums[1]
                        )
                    started = wall_clock()
                    decisions[node] = self._scan_flat(flat, feature_valid)
                    per_worker_seconds[worker_id] += wall_clock() - started
                self.group.clear_row("grad_hist", node)
            # Each worker's pulls serialize at its own NIC but run in
            # parallel across workers — fold into its compute lane so the
            # barrier below models the round-robin balancing.
            per_worker_seconds[worker_id] += comm_seconds
        clock.barrier(
            [
                seconds / self.cluster.speed_of(wid)
                for wid, seconds in enumerate(per_worker_seconds)
            ],
            phase="FIND_SPLIT",
        )
        # Responsible workers push results to the PS; everyone pulls them.
        w = self.cluster.n_workers
        clock.advance_comm(
            point_to_point_time(len(nodes) * DECISION_BYTES, self.cost)
            + (w - 1) * point_to_point_time(len(nodes) * DECISION_BYTES, self.cost)
            if w > 1
            else 0.0,
            phase="FIND_SPLIT",
        )
        self._push_bytes.clear()
        return decisions


_BACKENDS = {
    MLlibBackend.name: MLlibBackend,
    XGBoostBackend.name: XGBoostBackend,
    LightGBMBackend.name: LightGBMBackend,
    TencentBoostBackend.name: TencentBoostBackend,
    DimBoostBackend.name: DimBoostBackend,
}


def backend_options(system: str) -> tuple[str, ...]:
    """Keyword options a backend accepts beyond (cluster, config, candidates)."""
    try:
        backend_cls = _BACKENDS[system]
    except KeyError as exc:
        raise TrainingError(
            f"unknown system {system!r}; expected one of {BACKEND_NAMES}"
        ) from exc
    parameters = inspect.signature(backend_cls.__init__).parameters
    return tuple(
        name
        for name in parameters
        if name not in ("self", "cluster", "config", "candidates")
    )


def make_backend(
    system: str,
    cluster: ClusterConfig,
    config: TrainConfig,
    candidates: CandidateSet,
    **kwargs,
) -> AggregationBackend:
    """Instantiate a backend by system name (see ``BACKEND_NAMES``).

    Raises:
        TrainingError: For an unknown system name.
        ConfigError: For a keyword the backend does not accept (e.g. a
            typo'd ablation flag), naming the backend and its options.
    """
    accepted = backend_options(system)
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        options = (
            f"accepted options: {', '.join(accepted)}"
            if accepted
            else "it accepts no extra options"
        )
        raise ConfigError(
            f"unknown option(s) {', '.join(map(repr, unknown))} for backend "
            f"{system!r}; {options}"
        )
    return _BACKENDS[system](cluster, config, candidates, **kwargs)
