"""Synthetic sparse datasets mimicking the paper's workloads.

The paper evaluates on three datasets (Table 2):

=========  ==========  ==========  =========  ======
Dataset    #instances  #features   #nonzero   size
=========  ==========  ==========  =========  ======
RCV1       0.7M        47K         76         1.4GB
Synthesis  50M         100K        100        60GB
Gender     122M        330K        107        145GB
=========  ==========  ==========  =========  ======

plus a low-dimensional ``Synthesis-2`` (100M x 1000) in Appendix A.3.
None are shippable here (Gender is proprietary; all are too large for a
pure-Python single machine), so :func:`make_sparse_classification`
generates datasets with the same *shape statistics* — instance count,
dimensionality, and average nonzeros per instance are free parameters —
and a learnable sparse-linear label signal.  The presets
(:func:`rcv1_like` etc.) default to roughly 1/35-scaled versions and take
a ``scale`` argument for further shrinking in quick tests.

Key generator properties, chosen to exercise the same code paths the real
datasets do:

* Feature popularity follows a power law, so a few features are common and
  the long tail is rare — like one-hot/cross features in the Gender
  pipeline.
* Informative features are spread uniformly across the whole index range,
  so taking a feature *prefix* (the paper's Gender-10K/100K/330K subsets,
  Table 5) removes signal proportionally and test error degrades, matching
  the paper's trend.
* Labels come from a sparse linear logit with optional flip noise, so GBDT
  can learn the task but not trivially.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from ..utils.rng import spawn_rng
from .dataset import Dataset
from .sparse import CSRMatrix


@dataclass(frozen=True)
class SyntheticSpec:
    """Shape statistics of a synthetic dataset.

    Attributes:
        n_instances: Number of instances N.
        n_features: Dimensionality M.
        avg_nnz: Mean nonzeros per instance z (Poisson-distributed).
        n_informative: Number of label-carrying features; None picks
            ``min(50, max(1, n_features // 4))``.
        popularity_skew: Exponent of the power-law feature popularity
            (0 = uniform; ~1 = Zipf-like).
        informative_boost: Multiplier on the sampling weight of
            informative features so the sparse signal reaches enough rows.
        label_noise: Probability of flipping a label (classification) or
            the sigma of additive noise (regression).
        name: Dataset name used in reports.
    """

    n_instances: int
    n_features: int
    avg_nnz: float
    n_informative: int | None = None
    popularity_skew: float = 0.8
    informative_boost: float = 4.0
    label_noise: float = 0.05
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.n_instances < 1:
            raise DataError(f"n_instances must be >= 1, got {self.n_instances}")
        if self.n_features < 1:
            raise DataError(f"n_features must be >= 1, got {self.n_features}")
        if not 0 < self.avg_nnz <= self.n_features:
            raise DataError(
                f"avg_nnz must be in (0, n_features], got {self.avg_nnz}"
            )
        if self.n_informative is None:
            object.__setattr__(
                self, "n_informative", min(50, max(1, self.n_features // 4))
            )
        if not 1 <= self.n_informative <= self.n_features:
            raise DataError(
                f"n_informative must be in [1, n_features], got {self.n_informative}"
            )
        if self.label_noise < 0:
            raise DataError(f"label_noise must be >= 0, got {self.label_noise}")


def _sample_structure(
    spec: SyntheticSpec, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sample the sparsity structure and values of the feature matrix.

    Returns (indptr, indices, values, informative_ids).
    """
    m = spec.n_features
    # Power-law popularity over features, with informative features boosted.
    ranks = np.arange(1, m + 1, dtype=np.float64)
    popularity = ranks ** (-spec.popularity_skew)
    # Spread informative features evenly over the index range so feature
    # prefixes (Gender-10K style) hold a proportional share of the signal.
    informative_ids = np.linspace(0, m - 1, spec.n_informative).astype(np.int64)
    informative_ids = np.unique(informative_ids)
    popularity[informative_ids] *= spec.informative_boost
    popularity /= popularity.sum()

    row_nnz = rng.poisson(spec.avg_nnz, size=spec.n_instances)
    np.clip(row_nnz, 1, min(m, max(1, int(spec.avg_nnz * 6))), out=row_nnz)
    total = int(row_nnz.sum())
    # Sample with replacement then deduplicate per row: with z << m the
    # collision rate is tiny and the dedup keeps rows valid CSR.
    flat = rng.choice(m, size=total, replace=True, p=popularity).astype(np.int32)
    boundaries = np.zeros(spec.n_instances + 1, dtype=np.int64)
    np.cumsum(row_nnz, out=boundaries[1:])

    indices_parts: list[np.ndarray] = []
    counts = np.empty(spec.n_instances, dtype=np.int64)
    for i in range(spec.n_instances):
        row = np.unique(flat[boundaries[i] : boundaries[i + 1]])
        indices_parts.append(row)
        counts[i] = len(row)
    indices = np.concatenate(indices_parts)
    indptr = np.zeros(spec.n_instances + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    # Positive continuous values (TF-IDF-ish): lognormal keeps a realistic
    # heavy tail while staying strictly nonzero.
    values = rng.lognormal(mean=0.0, sigma=0.5, size=len(indices)).astype(np.float32)
    return indptr, indices, values, informative_ids


def _sparse_logits(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    weights_by_col: np.ndarray,
    n_instances: int,
) -> np.ndarray:
    """Row sums of value * weight[column] — the linear signal per instance."""
    contrib = values.astype(np.float64) * weights_by_col[indices]
    row_of = np.repeat(np.arange(n_instances), np.diff(indptr))
    logits = np.zeros(n_instances, dtype=np.float64)
    np.add.at(logits, row_of, contrib)
    return logits


def make_sparse_classification(spec: SyntheticSpec, seed: int = 0) -> Dataset:
    """Generate a binary classification dataset from ``spec``.

    Labels are drawn from ``Bernoulli(sigmoid(w . x))`` over the informative
    features, then flipped with probability ``spec.label_noise``.
    """
    rng = spawn_rng(seed, "synthetic_classification", spec.name)
    indptr, indices, values, informative_ids = _sample_structure(spec, rng)
    weights = np.zeros(spec.n_features, dtype=np.float64)
    weights[informative_ids] = rng.normal(0.0, 2.0, size=len(informative_ids))
    logits = _sparse_logits(indptr, indices, values, weights, spec.n_instances)
    logits -= np.median(logits)  # balance the classes
    probs = 1.0 / (1.0 + np.exp(-logits))
    y = (rng.random(spec.n_instances) < probs).astype(np.float32)
    if spec.label_noise > 0:
        flip = rng.random(spec.n_instances) < spec.label_noise
        y[flip] = 1.0 - y[flip]
    X = CSRMatrix(indptr, indices, values, (spec.n_instances, spec.n_features))
    return Dataset(X, y, spec.name)


def make_sparse_regression(spec: SyntheticSpec, seed: int = 0) -> Dataset:
    """Generate a regression dataset: ``y = w . x + noise``."""
    rng = spawn_rng(seed, "synthetic_regression", spec.name)
    indptr, indices, values, informative_ids = _sample_structure(spec, rng)
    weights = np.zeros(spec.n_features, dtype=np.float64)
    weights[informative_ids] = rng.normal(0.0, 1.0, size=len(informative_ids))
    y = _sparse_logits(indptr, indices, values, weights, spec.n_instances)
    if spec.label_noise > 0:
        y = y + rng.normal(0.0, spec.label_noise, size=spec.n_instances)
    X = CSRMatrix(indptr, indices, values, (spec.n_instances, spec.n_features))
    return Dataset(X, y.astype(np.float32), spec.name)


def _scaled(base: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(base * scale)))


def rcv1_like(scale: float = 1.0, seed: int = 0) -> Dataset:
    """RCV1-shaped dataset: base 20K x 4.7K with 76 nonzeros per row.

    The paper's RCV1 is 0.7M x 47K; the base here is ~1/35 in rows and
    ~1/10 in features so pure-Python training stays tractable.
    """
    spec = SyntheticSpec(
        n_instances=_scaled(20_000, scale),
        n_features=_scaled(4_700, scale, minimum=64),
        avg_nnz=min(76.0, _scaled(4_700, scale, minimum=64) / 2),
        n_informative=_scaled(60, max(scale, 0.2), minimum=8),
        name="rcv1-like",
    )
    return make_sparse_classification(spec, seed)


def synthesis_like(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Synthesis-shaped dataset: base 30K x 10K with 100 nonzeros per row."""
    spec = SyntheticSpec(
        n_instances=_scaled(30_000, scale),
        n_features=_scaled(10_000, scale, minimum=64),
        avg_nnz=min(100.0, _scaled(10_000, scale, minimum=64) / 2),
        n_informative=_scaled(80, max(scale, 0.2), minimum=8),
        name="synthesis-like",
    )
    return make_sparse_classification(spec, seed)


def gender_like(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Gender-shaped dataset: base 40K x 33K with 107 nonzeros per row.

    The real Gender dataset is 122M x 330K (proprietary).  Dimensionality
    is kept at 1/10 of the paper's so per-feature structures (histograms,
    sketches, PS shards) still dominate, which is what the Gender
    experiments stress.
    """
    spec = SyntheticSpec(
        n_instances=_scaled(40_000, scale),
        n_features=_scaled(33_000, scale, minimum=64),
        avg_nnz=min(107.0, _scaled(33_000, scale, minimum=64) / 2),
        n_informative=_scaled(120, max(scale, 0.2), minimum=8),
        name="gender-like",
    )
    return make_sparse_classification(spec, seed)


def low_dim_like(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Synthesis-2-shaped dataset (Appendix A.3): many rows, 1000 features."""
    spec = SyntheticSpec(
        n_instances=_scaled(60_000, scale),
        n_features=1_000,
        avg_nnz=200.0,
        n_informative=_scaled(50, max(scale, 0.2), minimum=8),
        popularity_skew=0.3,
        name="lowdim-like",
    )
    return make_sparse_classification(spec, seed)
