"""Simulated cluster clock.

All workers of the simulated cluster execute inside one Python process,
so their *parallel* compute must be accounted explicitly: a phase where
every worker independently spends ``t_i`` seconds advances the cluster
clock by ``max(t_i)`` (the synchronization barrier of Section 4.4 makes
every phase end when the slowest worker finishes).  Communication time
comes from the cost model and is added directly.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import CommunicationError


class SimClock:
    """Monotonic simulated clock with parallel-region support.

    Besides the communication/computation split, every charge can carry
    a *phase label* ("BUILD_HISTOGRAM", "FIND_SPLIT", ...) so trainers
    can report where the time went — the introspection behind the
    Table 3 style per-phase analysis.

    Attributes:
        time: Current simulated time in seconds.
    """

    __slots__ = ("time", "_comm", "_comp", "_by_phase")

    def __init__(self) -> None:
        self.time = 0.0
        self._comm = 0.0
        self._comp = 0.0
        self._by_phase: dict[str, float] = {}

    @property
    def communication(self) -> float:
        """Total simulated time attributed to communication."""
        return self._comm

    @property
    def computation(self) -> float:
        """Total simulated time attributed to (parallel) computation."""
        return self._comp

    def by_phase(self) -> dict[str, float]:
        """Seconds charged per phase label (labelled charges only)."""
        return dict(self._by_phase)

    def advance_comm(self, seconds: float, phase: str | None = None) -> None:
        """Charge ``seconds`` of communication time."""
        self._charge(seconds, phase)
        self._comm += seconds

    def advance_compute(self, seconds: float, phase: str | None = None) -> None:
        """Charge ``seconds`` of computation time."""
        self._charge(seconds, phase)
        self._comp += seconds

    def barrier(
        self, per_worker_seconds: Iterable[float], phase: str | None = None
    ) -> float:
        """End a parallel compute region: advance by the slowest worker.

        Args:
            per_worker_seconds: Measured compute time of each worker.
            phase: Optional phase label for the charge.

        Returns:
            The seconds charged (the maximum, 0.0 if empty).
        """
        worst = max(per_worker_seconds, default=0.0)
        self.advance_compute(worst, phase)
        return worst

    def _charge(self, seconds: float, phase: str | None = None) -> None:
        if seconds < 0:
            raise CommunicationError(f"cannot advance clock by {seconds} < 0")
        self.time += seconds
        if phase is not None:
            self._by_phase[phase] = self._by_phase.get(phase, 0.0) + seconds

    def __repr__(self) -> str:
        return (
            f"SimClock(time={self.time:.6f}, comm={self._comm:.6f}, "
            f"comp={self._comp:.6f})"
        )
