"""Tests for heterogeneous worker speeds (straggler modelling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, TrainConfig, train_distributed
from repro.errors import ConfigError


class TestConfig:
    def test_speeds_length_validated(self):
        with pytest.raises(ConfigError, match="worker_speeds"):
            ClusterConfig(n_workers=3, worker_speeds=(1.0, 1.0))

    def test_speeds_positive(self):
        with pytest.raises(ConfigError, match="positive"):
            ClusterConfig(n_workers=2, worker_speeds=(1.0, 0.0))

    def test_speed_of_default(self):
        cluster = ClusterConfig(n_workers=2)
        assert cluster.speed_of(0) == 1.0

    def test_speed_of_explicit(self):
        cluster = ClusterConfig(n_workers=2, worker_speeds=(1.0, 0.25))
        assert cluster.speed_of(1) == 0.25


class TestStragglerEffect:
    def test_one_straggler_slows_the_cluster(self, small_dataset):
        """A half-speed worker inflates every barrier: synchronous
        training pays the slowest machine (the heterogeneity problem)."""
        config = TrainConfig(n_trees=3, max_depth=4, n_split_candidates=8)
        uniform = train_distributed(
            "dimboost",
            small_dataset,
            ClusterConfig(n_workers=4, n_servers=4),
            config,
        )
        straggler = train_distributed(
            "dimboost",
            small_dataset,
            ClusterConfig(
                n_workers=4, n_servers=4, worker_speeds=(1.0, 1.0, 1.0, 0.25)
            ),
            config,
        )
        assert straggler.breakdown.computation > uniform.breakdown.computation
        # Communication is unaffected by compute speeds.
        assert straggler.breakdown.communication == pytest.approx(
            uniform.breakdown.communication, rel=0.2
        )

    def test_model_unaffected_by_speeds(self, small_dataset):
        """Speeds change time, never results."""
        config = TrainConfig(n_trees=2, max_depth=4, n_split_candidates=8)
        a = train_distributed(
            "dimboost",
            small_dataset,
            ClusterConfig(n_workers=3, n_servers=3),
            config,
            compression_bits=0,
        )
        b = train_distributed(
            "dimboost",
            small_dataset,
            ClusterConfig(
                n_workers=3, n_servers=3, worker_speeds=(1.0, 0.1, 2.0)
            ),
            config,
            compression_bits=0,
        )
        np.testing.assert_array_equal(
            a.model.predict_raw(small_dataset.X),
            b.model.predict_raw(small_dataset.X),
        )

    def test_jitter_amplitude_validated(self):
        with pytest.raises(ConfigError, match="speed_jitter"):
            ClusterConfig(n_workers=2, speed_jitter=1.0)
        with pytest.raises(ConfigError, match="speed_jitter"):
            ClusterConfig(n_workers=2, speed_jitter=-0.1)

    def test_jitter_never_changes_model(self, small_dataset):
        """Per-layer speed jitter is pure clock accounting: trained
        model bits are unchanged, with and without the knob, across
        replays.  (Simulated seconds are built from *measured* compute,
        so only the model — not the clock — is replayable.)"""
        config = TrainConfig(n_trees=2, max_depth=4, n_split_candidates=8)
        plain = train_distributed(
            "dimboost",
            small_dataset,
            ClusterConfig(n_workers=3, n_servers=3),
            config,
            compression_bits=0,
        )
        reference = plain.model.predict_raw(small_dataset.X)
        for amplitude in (0.2, 0.3):
            jittered = train_distributed(
                "dimboost",
                small_dataset,
                ClusterConfig(
                    n_workers=3, n_servers=3, speed_jitter=amplitude
                ),
                config,
                compression_bits=0,
            )
            np.testing.assert_array_equal(
                reference, jittered.model.predict_raw(small_dataset.X)
            )

    def test_uniformly_fast_cluster_is_faster(self, small_dataset):
        config = TrainConfig(n_trees=2, max_depth=4, n_split_candidates=8)
        nominal = train_distributed(
            "dimboost",
            small_dataset,
            ClusterConfig(n_workers=2, n_servers=2),
            config,
        )
        fast = train_distributed(
            "dimboost",
            small_dataset,
            ClusterConfig(n_workers=2, n_servers=2, worker_speeds=(4.0, 4.0)),
            config,
        )
        assert fast.breakdown.computation < nominal.breakdown.computation
