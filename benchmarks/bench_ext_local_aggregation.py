"""Extension bench — local aggregation + bounded staleness vs barriers.

The straggler bench shows synchronous training paying the slowest
machine at every barrier.  This bench runs the same cluster scenarios
through the two new knobs: an aggregation window of 8 (one windowed
push per worker instead of one per node — the latency term shrinks by
the window size) and staleness 1 on top (barrier seconds deferred into
lanes, settled every S+1 layers).  Windowing must beat the synchronous
baseline in every scenario while staying bit-identical at S=0.  The
async mode must also beat the baseline, and under the *jittered*
scenario — per-layer speed jitter rotating which worker straggles —
it must beat pure windowing too: barriers pay every layer's max, lanes
absorb whichever worker happened to be slow that layer.
"""

from __future__ import annotations

import hashlib
import json

from repro import ClusterConfig, TrainConfig, train_distributed
from repro.datasets import synthesis_like

from conftest import bench_scale


def model_hash(result):
    payload = json.dumps(result.model.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def test_ext_local_aggregation(benchmark, report):
    scale = bench_scale()
    data = synthesis_like(scale=0.15 * scale, seed=3)
    base = dict(
        n_trees=4, max_depth=6, n_split_candidates=20, learning_rate=0.2
    )
    modes = [
        ("sync (W=1, S=0)", TrainConfig(**base)),
        ("windowed (W=8, S=0)", TrainConfig(agg_window=8, **base)),
        ("async (W=8, S=1)", TrainConfig(agg_window=8, staleness=1, **base)),
    ]
    scenarios = [
        ("uniform cluster", None, 0.0),
        ("one worker at 50%", (1.0,) * 7 + (0.5,), 0.0),
        ("one worker at 25%", (1.0,) * 7 + (0.25,), 0.0),
        # Rotating stragglers: per-layer speed jitter means a *different*
        # worker is slowest each layer — the regime where deferring
        # barriers (S=1) beats pure windowing, not just the baseline.
        ("jitter ±30%", None, 0.3),
    ]

    def run():
        rows = []
        hashes = {}
        for label, speeds, jitter in scenarios:
            cluster = ClusterConfig(
                n_workers=8, n_servers=8, worker_speeds=speeds,
                speed_jitter=jitter,
            )
            for mode, config in modes:
                result = train_distributed("dimboost", data, cluster, config)
                rows.append(
                    [
                        label,
                        mode,
                        result.sim_seconds,
                        result.breakdown.communication,
                    ]
                )
                hashes[(label, mode)] = model_hash(result)
        return rows, hashes

    rows, hashes = benchmark.pedantic(run, rounds=1, iterations=1)
    by_cell = {(row[0], row[1]): row for row in rows}
    for label, _speeds, _jitter in scenarios:
        sync = by_cell[(label, "sync (W=1, S=0)")]
        windowed = by_cell[(label, "windowed (W=8, S=0)")]
        asynchronous = by_cell[(label, "async (W=8, S=1)")]
        for row in (windowed, asynchronous):
            row.append(sync[2] / row[2])
        sync.append(1.0)
        # Windowing cuts the per-node latency term — strictly faster.
        assert windowed[2] < sync[2], label
        assert asynchronous[2] < sync[2], label
        # And the windowed model is the synchronous model, bit for bit.
        assert (
            hashes[(label, "windowed (W=8, S=0)")]
            == hashes[(label, "sync (W=1, S=0)")]
        ), label
    # Under rotating stragglers the synchronous modes pay
    # sum-over-layers of the per-layer max; lanes pay (roughly) the max
    # over layers of per-worker sums — staleness finally beats pure
    # windowing, not just the barrier baseline.
    assert (
        by_cell[("jitter ±30%", "async (W=8, S=1)")][2]
        < by_cell[("jitter ±30%", "windowed (W=8, S=0)")][2]
    )
    # Jitter perturbs the clock, never the model: bit-identical to the
    # unjittered synchronous run.
    assert (
        hashes[("jitter ±30%", "sync (W=1, S=0)")]
        == hashes[("uniform cluster", "sync (W=1, S=0)")]
    )
    report.add_table(
        "Extension: local aggregation + bounded staleness",
        ["scenario", "mode", "sim seconds", "communication", "speedup"],
        rows,
        notes=(
            "8 workers; window=8 batches node pushes (one latency term per "
            "window); S=1 defers barriers into lanes; W=8/S=0 is "
            "bit-identical to the synchronous baseline; the jittered "
            "scenario draws per-(layer, worker) speeds in [0.7, 1.3] and "
            "is where S=1 beats pure windowing"
        ),
    )
