"""DimBoost reproduction: distributed GBDT for high-dimensional sparse data.

A from-scratch Python implementation of *DimBoost: Boosting Gradient
Boosting Decision Tree to Higher Dimensions* (SIGMOD 2018): the
parameter-server GBDT system, its communication/computation
optimizations, and simulated versions of the baseline systems the paper
compares against (MLlib, XGBoost, LightGBM, TencentBoost).

Quickstart::

    from repro import GBDT, TrainConfig
    from repro.datasets import rcv1_like, train_test_split

    data = rcv1_like(scale=0.2)
    train, test = train_test_split(data)
    model = GBDT(TrainConfig(n_trees=10, max_depth=5)).fit(train)
    proba = model.predict(test.X)
"""

from .config import ClusterConfig, NetworkCost, TrainConfig
from .errors import (
    CommunicationError,
    ConfigError,
    DataError,
    NotFittedError,
    PSError,
    ReproError,
    SketchError,
    TrainingError,
)
from .boosting import GBDT, GBDTModel
from .datasets import CSRMatrix, Dataset, train_test_split
from .distributed import (
    BACKEND_NAMES,
    DistributedGBDT,
    DistributedResult,
    train_distributed,
)

__version__ = "1.0.0"

__all__ = [
    "TrainConfig",
    "ClusterConfig",
    "NetworkCost",
    "ReproError",
    "ConfigError",
    "DataError",
    "SketchError",
    "CommunicationError",
    "PSError",
    "TrainingError",
    "NotFittedError",
    "GBDT",
    "GBDTModel",
    "CSRMatrix",
    "Dataset",
    "train_test_split",
    "BACKEND_NAMES",
    "DistributedGBDT",
    "DistributedResult",
    "train_distributed",
    "__version__",
]
