"""Tests for the hybrid range-hash parameter partitioner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PSError
from repro.ps import VectorPartitioner


class TestCoverage:
    @pytest.mark.parametrize("length,p", [(100, 4), (7, 3), (1, 1), (1000, 7)])
    def test_ranges_cover_vector(self, length, p):
        part = VectorPartitioner(length, p)
        covered = np.zeros(length, dtype=int)
        for rng_ in part.partitions:
            covered[rng_.lo : rng_.hi] += 1
        assert (covered == 1).all()

    def test_ranges_contiguous_in_order(self):
        part = VectorPartitioner(100, 4)
        for a, b in zip(part.partitions, part.partitions[1:]):
            assert a.hi == b.lo

    def test_default_partition_count_is_servers(self):
        part = VectorPartitioner(100, 5)
        assert part.n_partitions == 5

    def test_more_partitions_than_servers(self):
        part = VectorPartitioner(100, 3, n_partitions=9)
        assert part.n_partitions == 9
        servers = {p.server_id for p in part.partitions}
        assert servers == {0, 1, 2}

    def test_partitions_capped_by_length(self):
        part = VectorPartitioner(3, 10)
        assert part.n_partitions == 3


class TestHashBalance:
    def test_every_server_used_when_possible(self):
        part = VectorPartitioner(1000, 8)
        assert {p.server_id for p in part.partitions} == set(range(8))

    def test_loads_balanced(self):
        part = VectorPartitioner(1024, 8, n_partitions=32)
        loads = part.server_loads()
        assert loads.sum() == 1024
        assert loads.max() - loads.min() <= 1024 // 8

    def test_salt_changes_placement(self):
        # Any single pair of salts may coincide by chance; at least one of
        # several salts must produce a different placement than salt 0.
        base = [
            p.server_id
            for p in VectorPartitioner(100, 4, n_partitions=8, salt=0).partitions
        ]
        others = [
            [
                p.server_id
                for p in VectorPartitioner(100, 4, n_partitions=8, salt=s).partitions
            ]
            for s in range(1, 6)
        ]
        assert any(placement != base for placement in others)

    def test_deterministic(self):
        a = VectorPartitioner(100, 4, salt=3)
        b = VectorPartitioner(100, 4, salt=3)
        assert [p.server_id for p in a.partitions] == [
            p.server_id for p in b.partitions
        ]


class TestAlignment:
    def test_boundaries_on_multiples(self):
        part = VectorPartitioner(120, 4, align=8)
        for p in part.partitions:
            assert p.lo % 8 == 0
            assert p.hi % 8 == 0

    def test_align_must_divide_length(self):
        with pytest.raises(PSError):
            VectorPartitioner(100, 4, align=7)

    def test_align_larger_than_share(self):
        # 4 units of 8 over 8 servers: only 4 partitions possible.
        part = VectorPartitioner(32, 8, align=8)
        assert part.n_partitions == 4


class TestRangeQuery:
    def test_partition_of_index(self):
        part = VectorPartitioner(100, 4)
        for i in (0, 24, 25, 99):
            found = part.partition_of_index(i)
            assert found.lo <= i < found.hi

    def test_partition_of_index_bounds(self):
        part = VectorPartitioner(10, 2)
        with pytest.raises(PSError):
            part.partition_of_index(10)

    def test_partitions_on_server(self):
        part = VectorPartitioner(100, 4, n_partitions=8)
        total = sum(len(part.partitions_on_server(s)) for s in range(4))
        assert total == 8

    def test_partitions_on_server_bounds(self):
        part = VectorPartitioner(10, 2)
        with pytest.raises(PSError):
            part.partitions_on_server(5)


class TestValidation:
    def test_negative_length(self):
        with pytest.raises(PSError):
            VectorPartitioner(-1, 2)

    def test_zero_servers(self):
        with pytest.raises(PSError):
            VectorPartitioner(10, 0)

    def test_zero_length(self):
        part = VectorPartitioner(0, 2)
        assert part.partitions[0].length == 0


class TestRangeOverlapQuery:
    def test_partitions_in_range(self):
        part = VectorPartitioner(100, 4, n_partitions=8)
        hits = part.partitions_in_range(10, 40)
        assert hits, "a non-empty range must overlap at least one partition"
        for p in hits:
            assert p.lo < 40 and p.hi > 10
        misses = {p.partition_id for p in part.partitions} - {
            p.partition_id for p in hits
        }
        for pid in misses:
            p = part.partitions[pid]
            assert p.hi <= 10 or p.lo >= 40

    def test_empty_range(self):
        part = VectorPartitioner(100, 4)
        assert part.partitions_in_range(50, 50) == []

    def test_invalid_range(self):
        part = VectorPartitioner(100, 4)
        with pytest.raises(PSError):
            part.partitions_in_range(40, 10)
        with pytest.raises(PSError):
            part.partitions_in_range(0, 101)

    def test_full_range_is_all_partitions(self):
        part = VectorPartitioner(100, 4, n_partitions=8)
        assert part.partitions_in_range(0, 100) == list(part.partitions)


class TestProperties:
    """Hypothesis properties over lengths, alignment, and server counts."""

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 50),
        st.integers(1, 8),
        st.integers(1, 12),
        st.integers(1, 6),
    )
    def test_align_clamps_and_covers(self, units, align, n_servers, n_parts):
        """With align > 1 the partition count clamps to the unit count,
        boundaries stay on multiples, and ranges still tile the vector."""
        length = units * align
        part = VectorPartitioner(
            length, n_servers, n_partitions=n_parts, align=align
        )
        assert part.n_partitions == min(n_parts, units)
        covered = 0
        for p in part.partitions:
            assert p.lo % align == 0 and p.hi % align == 0
            covered += p.length
        assert covered == length
        assert part.partitions[0].lo == 0
        assert part.partitions[-1].hi == length

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 8), st.integers(1, 12))
    def test_single_unit_vector(self, align, n_servers):
        """A one-unit vector always yields exactly one partition."""
        part = VectorPartitioner(
            align, n_servers, n_partitions=7, align=align
        )
        assert part.n_partitions == 1
        assert part.partition_of_index(0).lo == 0
        assert part.partition_of_index(align - 1).hi == align

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 200),
        st.integers(1, 8),
        st.integers(1, 16),
        st.integers(0, 5),
    )
    def test_server_loads_balance_bound(self, length, n_servers, n_parts, salt):
        """Round-robin dealing bounds the per-server element imbalance by
        one partition's worth (ceil of the largest range)."""
        part = VectorPartitioner(
            length, n_servers, n_partitions=n_parts, salt=salt
        )
        loads = part.server_loads()
        assert int(loads.sum()) == length
        # The hash step deals ranges round-robin, so range *counts* per
        # server differ by at most one ...
        counts = np.zeros(n_servers, dtype=np.int64)
        for p in part.partitions:
            counts[p.server_id] += 1
        assert int(counts.max() - counts.min()) <= 1
        # ... which bounds any server's element load by its range count
        # times the largest range (linspace keeps ranges within one
        # element of each other).
        largest_range = max(p.length for p in part.partitions)
        assert int(loads.max()) <= int(counts.max()) * largest_range

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 300), st.integers(1, 8), st.integers(1, 16))
    def test_partition_of_index_matches_linear_scan(
        self, length, n_servers, n_parts
    ):
        """Binary search agrees with the linear definition everywhere."""
        part = VectorPartitioner(length, n_servers, n_partitions=n_parts)
        for i in range(0, length, max(1, length // 17)):
            found = part.partition_of_index(i)
            assert found.lo <= i < found.hi
