"""Greenwald-Khanna epsilon-approximate quantile summaries.

A GK summary over ``n`` observed values is a sorted list of entries
``(value, g, delta)`` where ``g`` is the gap in minimal rank to the
previous entry and ``delta`` bounds the rank uncertainty of the entry.
The invariant ``g + delta <= 2 * eps * n`` guarantees that any rank query
is answered within ``eps * n`` of the true rank [Greenwald & Khanna,
SIGMOD 2001].

Three construction paths are provided:

* :meth:`GKSketch.insert` — classic streaming insertion with periodic
  compression (used when data arrives value by value).
* :meth:`GKSketch.from_values` — batch construction from an in-memory
  array: sort once and keep every ``ceil(2*eps*n)``-th element.  This is
  how workers summarize their local data shard in CREATE_SKETCH, since
  the shard is already resident.
* :meth:`GKSketch.merge` — combine two summaries (the PS-side aggregation
  of local sketches).  Merging concatenates the weighted entries and
  re-compresses; the rank error of the result is bounded by the sum of
  the inputs' errors, so distributed use builds local sketches at
  ``eps / 2`` to end below ``eps`` after one merge level.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Sequence

import numpy as np

from ..errors import SketchError


class GKSketch:
    """Greenwald-Khanna quantile summary.

    Attributes:
        eps: Target rank-error fraction.
        count: Number of values summarized.
    """

    __slots__ = ("eps", "count", "_values", "_g", "_delta")

    def __init__(self, eps: float = 0.01) -> None:
        if not 0.0 < eps < 0.5:
            raise SketchError(f"eps must be in (0, 0.5), got {eps}")
        self.eps = float(eps)
        self.count = 0
        self._values: list[float] = []
        self._g: list[int] = []
        self._delta: list[int] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_values(cls, values: Sequence[float] | np.ndarray, eps: float = 0.01) -> "GKSketch":
        """Build a summary from an in-memory batch by sort-and-sample.

        The result has at most ``ceil(1 / (2 * eps)) + 2`` entries and zero
        delta everywhere, hence rank error at most ``eps * n``.
        """
        arr = np.sort(np.asarray(values, dtype=np.float64))
        if len(arr) == 0:
            return cls(eps)
        return _from_presorted(arr, eps)

    def insert(self, value: float) -> None:
        """Insert one value (streaming GK insertion with compression)."""
        value = float(value)
        self.count += 1
        threshold = self._threshold()
        i = bisect.bisect_left(self._values, value)
        if i == 0 or i == len(self._values):
            # New minimum or maximum: delta must be 0 at the extremes.
            self._values.insert(i, value)
            self._g.insert(i, 1)
            self._delta.insert(i, 0)
        else:
            self._values.insert(i, value)
            self._g.insert(i, 1)
            self._delta.insert(i, max(0, threshold - 1))
        if len(self._values) > self._max_entries():
            self._compress()

    def extend(self, values: Iterable[float]) -> None:
        """Insert many values one by one."""
        for value in values:
            self.insert(value)

    def _threshold(self) -> int:
        return max(1, int(math.floor(2.0 * self.eps * self.count)))

    def _max_entries(self) -> int:
        # Keep roughly 3/eps entries before compressing; GK's bound is
        # O(log(eps * n) / eps) but this fixed cap works well in practice.
        return int(3.0 / self.eps) + 8

    def _compress(self) -> None:
        """Greedily merge adjacent entries while the GK invariant holds."""
        if len(self._values) <= 2:
            return
        threshold = self._threshold()
        values = [self._values[0]]
        gs = [self._g[0]]
        deltas = [self._delta[0]]
        for i in range(1, len(self._values) - 1):
            # Classic GK merge: absorb the previous tuple into this one
            # when the combined weight plus this tuple's uncertainty still
            # satisfies the invariant.
            if len(values) > 1 and gs[-1] + self._g[i] + self._delta[i] <= threshold:
                gs[-1] += self._g[i]
                values[-1] = self._values[i]
                deltas[-1] = self._delta[i]
            else:
                values.append(self._values[i])
                gs.append(self._g[i])
                deltas.append(self._delta[i])
        values.append(self._values[-1])
        gs.append(self._g[-1])
        deltas.append(self._delta[-1])
        self._values, self._g, self._delta = values, gs, deltas

    # ------------------------------------------------------------------
    # merging (PS-side aggregation)
    # ------------------------------------------------------------------

    def merge(self, other: "GKSketch") -> "GKSketch":
        """Return a new summary covering both inputs.

        Entries are interleaved by value keeping their weights; deltas are
        inflated by the partner sketch's uncertainty, so the merged rank
        error is bounded by ``self.eps * self.count + other.eps *
        other.count`` — i.e. the errors add, they do not multiply.
        """
        if not isinstance(other, GKSketch):
            raise SketchError(
                f"cannot merge GKSketch with {type(other).__name__}"
            )
        if other.count == 0:
            return self.copy()
        if self.count == 0:
            merged = other.copy()
            merged.eps = max(self.eps, other.eps)
            return merged
        out = GKSketch(max(self.eps, other.eps))
        out.count = self.count + other.count
        err_a = int(math.floor(2.0 * self.eps * self.count))
        err_b = int(math.floor(2.0 * other.eps * other.count))
        # Both inputs are sorted, so a stable sort of the concatenation
        # (self first) reproduces the classic two-pointer interleave,
        # including its take-self-on-ties rule.
        values = np.concatenate(
            (
                np.asarray(self._values, dtype=np.float64),
                np.asarray(other._values, dtype=np.float64),
            )
        )
        gs = np.concatenate(
            (
                np.asarray(self._g, dtype=np.int64),
                np.asarray(other._g, dtype=np.int64),
            )
        )
        deltas = np.concatenate(
            (
                np.asarray(self._delta, dtype=np.int64) + err_b,
                np.asarray(other._delta, dtype=np.int64) + err_a,
            )
        )
        order = np.argsort(values, kind="stable")
        values = values[order]
        gs = gs[order]
        deltas = deltas[order]
        # Extremes must carry zero delta for exact min/max queries.
        deltas[0] = 0
        deltas[-1] = 0
        out._values = values.tolist()
        out._g = gs.tolist()
        out._delta = deltas.tolist()
        out._compress_merged()
        return out

    def _compress_merged(self) -> None:
        """Size-driven compression after merge (keeps the delta bounds)."""
        target = self._max_entries()
        if len(self._values) <= target:
            return
        # Reduce to ~target entries by combining adjacent entries evenly.
        # The extremes are kept verbatim; interior entries are grouped
        # greedily so each group's total g stays within the budget (a group
        # always takes at least one entry).  Group boundaries come from one
        # searchsorted per group over the cumulative g — O(target log n)
        # instead of a Python loop over every entry.
        budget = max(1, int(math.ceil(sum(self._g) / max(1, target - 2))))
        values = np.asarray(self._values, dtype=np.float64)
        gs = np.asarray(self._g, dtype=np.int64)
        deltas = np.asarray(self._delta, dtype=np.int64)
        interior_g = gs[1:-1]
        cum = np.cumsum(interior_g)
        starts: list[int] = []
        s = 0
        n_interior = len(interior_g)
        while s < n_interior:
            starts.append(s)
            base = cum[s] - interior_g[s]
            s = max(s + 1, int(np.searchsorted(cum, base + budget, side="right")))
        start_idx = np.asarray(starts, dtype=np.int64)
        end_idx = np.append(start_idx[1:], n_interior)
        grouped_g = np.add.reduceat(interior_g, start_idx)
        grouped_delta = np.maximum.reduceat(deltas[1:-1], start_idx)
        grouped_values = values[1:-1][end_idx - 1]
        self._values = (
            [float(values[0])] + grouped_values.tolist() + [float(values[-1])]
        )
        self._g = [int(gs[0])] + grouped_g.tolist() + [int(gs[-1])]
        self._delta = (
            [int(deltas[0])] + grouped_delta.tolist() + [int(deltas[-1])]
        )

    def copy(self) -> "GKSketch":
        """Return a deep copy."""
        out = GKSketch(self.eps)
        out.count = self.count
        out._values = list(self._values)
        out._g = list(self._g)
        out._delta = list(self._delta)
        return out

    # ------------------------------------------------------------------
    # wire serialization (what CREATE_SKETCH actually pushes)
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize for the PS push: eps + count + packed entries.

        Layout: float64 eps, int64 count, int32 n_entries, then three
        parallel arrays (float64 values, int32 g, int32 delta).  This is
        the real wire size the CREATE_SKETCH phase pays per feature.
        """
        header = np.empty(2, dtype=np.float64)
        header[0] = self.eps
        header[1] = float(self.count)
        n = np.asarray([len(self._values)], dtype=np.int32)
        values = np.asarray(self._values, dtype=np.float64)
        gs = np.asarray(self._g, dtype=np.int32)
        deltas = np.asarray(self._delta, dtype=np.int32)
        return b"".join(
            arr.tobytes() for arr in (header, n, values, gs, deltas)
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "GKSketch":
        """Inverse of :meth:`to_bytes`."""
        if len(payload) < 20:
            raise SketchError(f"sketch payload too short ({len(payload)} bytes)")
        header = np.frombuffer(payload, dtype=np.float64, count=2)
        n = int(np.frombuffer(payload, dtype=np.int32, count=1, offset=16)[0])
        expected = 20 + n * (8 + 4 + 4)
        if len(payload) != expected:
            raise SketchError(
                f"sketch payload has {len(payload)} bytes, expected {expected}"
            )
        sketch = cls(float(header[0]))
        sketch.count = int(header[1])
        offset = 20
        sketch._values = list(
            np.frombuffer(payload, dtype=np.float64, count=n, offset=offset)
        )
        offset += 8 * n
        sketch._g = [
            int(v)
            for v in np.frombuffer(payload, dtype=np.int32, count=n, offset=offset)
        ]
        offset += 4 * n
        sketch._delta = [
            int(v)
            for v in np.frombuffer(payload, dtype=np.int32, count=n, offset=offset)
        ]
        return sketch

    @property
    def wire_bytes(self) -> int:
        """Size of :meth:`to_bytes` without materializing it."""
        return 20 + len(self._values) * 16

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    @property
    def min_value(self) -> float:
        """Smallest value observed."""
        if self.count == 0:
            raise SketchError("cannot query an empty sketch")
        return self._values[0]

    @property
    def max_value(self) -> float:
        """Largest value observed."""
        if self.count == 0:
            raise SketchError("cannot query an empty sketch")
        return self._values[-1]

    def query(self, quantile: float) -> float:
        """Return a value whose rank is within ``eps * n`` of ``quantile * n``."""
        if self.count == 0:
            raise SketchError("cannot query an empty sketch")
        if not 0.0 <= quantile <= 1.0:
            raise SketchError(f"quantile must be in [0, 1], got {quantile}")
        target = quantile * self.count
        slack = self.eps * self.count
        rank_min = np.cumsum(np.asarray(self._g, dtype=np.int64))
        rank_max = rank_min + np.asarray(self._delta, dtype=np.int64)
        ok = (target <= rank_max + slack) & (target <= rank_min + slack)
        if not ok.any():
            return self._values[-1]
        return self._values[int(np.argmax(ok))]

    def quantiles(self, k: int) -> np.ndarray:
        """Return ``k`` evenly spaced interior quantiles (1/(k+1) .. k/(k+1))."""
        if k < 1:
            raise SketchError(f"k must be >= 1, got {k}")
        qs = np.arange(1, k + 1, dtype=np.float64) / (k + 1)
        return np.asarray([self.query(q) for q in qs], dtype=np.float64)

    def rank_of(self, value: float) -> tuple[int, int]:
        """Return (rank_min, rank_max) bounds for ``value`` (test helper)."""
        if self.count == 0:
            raise SketchError("cannot query an empty sketch")
        rank_min = 0
        for i in range(len(self._values)):
            if self._values[i] > value:
                return rank_min, rank_min + (self._delta[i - 1] if i else 0)
            rank_min += self._g[i]
        return rank_min, rank_min


class WeightedGKSketch:
    """Weighted mergeable quantile summary (hessian-weighted entries).

    Follows the mergeable weighted quantile construction of Huang & Yi
    (arXiv:1909.07633): entries are ``(value, g, delta)`` exactly as in
    :class:`GKSketch`, but ``g`` and ``delta`` live in *weighted* rank
    space (float64) and the invariant is ``g + delta <= 2 * eps * W`` for
    total weight ``W``.  Items whose individual weight exceeds the
    sampling step are necessarily retained as exact entries, so heavy
    items never hide inside a gap.  Merging concatenates and
    re-compresses with the error bounds adding, exactly as in the
    unweighted case, so distributed use builds local summaries at
    ``eps / 2`` to end below ``eps`` after one merge level.

    Attributes:
        eps: Target weighted-rank-error fraction.
        count: Number of items summarized.
        total_weight: Total weight summarized.
    """

    __slots__ = ("eps", "count", "total_weight", "_values", "_g", "_delta")

    def __init__(self, eps: float = 0.01) -> None:
        if not 0.0 < eps < 0.5:
            raise SketchError(f"eps must be in (0, 0.5), got {eps}")
        self.eps = float(eps)
        self.count = 0
        self.total_weight = 0.0
        self._values: list[float] = []
        self._g: list[float] = []
        self._delta: list[float] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_values(
        cls,
        values: Sequence[float] | np.ndarray,
        weights: Sequence[float] | np.ndarray,
        eps: float = 0.01,
    ) -> "WeightedGKSketch":
        """Build a summary from a batch of (value, weight) pairs."""
        arr = np.asarray(values, dtype=np.float64)
        wts = np.asarray(weights, dtype=np.float64)
        if arr.shape != wts.shape:
            raise SketchError(
                f"values and weights differ in shape: {arr.shape} vs {wts.shape}"
            )
        if arr.size and float(wts.min()) < 0.0:
            raise SketchError("weights must be non-negative")
        order = np.argsort(arr, kind="stable")
        return _from_presorted_weighted(arr[order], wts[order], eps)

    def _max_entries(self) -> int:
        return int(3.0 / self.eps) + 8

    # ------------------------------------------------------------------
    # merging (PS-side aggregation)
    # ------------------------------------------------------------------

    def merge(self, other: "WeightedGKSketch") -> "WeightedGKSketch":
        """Return a new summary covering both inputs (errors add)."""
        if not isinstance(other, WeightedGKSketch):
            raise SketchError(
                f"cannot merge WeightedGKSketch with {type(other).__name__}"
            )
        if other.count == 0:
            return self.copy()
        if self.count == 0:
            merged = other.copy()
            merged.eps = max(self.eps, other.eps)
            return merged
        out = WeightedGKSketch(max(self.eps, other.eps))
        out.count = self.count + other.count
        out.total_weight = self.total_weight + other.total_weight
        err_a = 2.0 * self.eps * self.total_weight
        err_b = 2.0 * other.eps * other.total_weight
        values = np.concatenate(
            (
                np.asarray(self._values, dtype=np.float64),
                np.asarray(other._values, dtype=np.float64),
            )
        )
        gs = np.concatenate(
            (
                np.asarray(self._g, dtype=np.float64),
                np.asarray(other._g, dtype=np.float64),
            )
        )
        deltas = np.concatenate(
            (
                np.asarray(self._delta, dtype=np.float64) + err_b,
                np.asarray(other._delta, dtype=np.float64) + err_a,
            )
        )
        order = np.argsort(values, kind="stable")
        values = values[order]
        gs = gs[order]
        deltas = deltas[order]
        deltas[0] = 0.0
        deltas[-1] = 0.0
        out._values = values.tolist()
        out._g = gs.tolist()
        out._delta = deltas.tolist()
        out._compress_merged()
        return out

    def _compress_merged(self) -> None:
        """Size-driven compression after merge (weighted-g budget)."""
        target = self._max_entries()
        if len(self._values) <= target:
            return
        values = np.asarray(self._values, dtype=np.float64)
        gs = np.asarray(self._g, dtype=np.float64)
        deltas = np.asarray(self._delta, dtype=np.float64)
        budget = max(
            float(gs.sum()) / max(1, target - 2), np.finfo(np.float64).tiny
        )
        interior_g = gs[1:-1]
        cum = np.cumsum(interior_g)
        starts: list[int] = []
        s = 0
        n_interior = len(interior_g)
        while s < n_interior:
            starts.append(s)
            base = cum[s] - interior_g[s]
            s = max(s + 1, int(np.searchsorted(cum, base + budget, side="right")))
        start_idx = np.asarray(starts, dtype=np.int64)
        end_idx = np.append(start_idx[1:], n_interior)
        grouped_g = np.add.reduceat(interior_g, start_idx)
        grouped_delta = np.maximum.reduceat(deltas[1:-1], start_idx)
        grouped_values = values[1:-1][end_idx - 1]
        self._values = (
            [float(values[0])] + grouped_values.tolist() + [float(values[-1])]
        )
        self._g = [float(gs[0])] + grouped_g.tolist() + [float(gs[-1])]
        self._delta = (
            [float(deltas[0])] + grouped_delta.tolist() + [float(deltas[-1])]
        )

    def copy(self) -> "WeightedGKSketch":
        """Return a deep copy."""
        out = WeightedGKSketch(self.eps)
        out.count = self.count
        out.total_weight = self.total_weight
        out._values = list(self._values)
        out._g = list(self._g)
        out._delta = list(self._delta)
        return out

    # ------------------------------------------------------------------
    # wire serialization
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize for the PS push.

        Layout: float64 eps, float64 total_weight, int64 count, int32
        n_entries, then three parallel float64 arrays (values, g, delta).
        """
        header = np.empty(2, dtype=np.float64)
        header[0] = self.eps
        header[1] = self.total_weight
        count = np.asarray([self.count], dtype=np.int64)
        n = np.asarray([len(self._values)], dtype=np.int32)
        values = np.asarray(self._values, dtype=np.float64)
        gs = np.asarray(self._g, dtype=np.float64)
        deltas = np.asarray(self._delta, dtype=np.float64)
        return b"".join(
            arr.tobytes() for arr in (header, count, n, values, gs, deltas)
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "WeightedGKSketch":
        """Inverse of :meth:`to_bytes`."""
        if len(payload) < 28:
            raise SketchError(f"sketch payload too short ({len(payload)} bytes)")
        header = np.frombuffer(payload, dtype=np.float64, count=2)
        count = int(np.frombuffer(payload, dtype=np.int64, count=1, offset=16)[0])
        n = int(np.frombuffer(payload, dtype=np.int32, count=1, offset=24)[0])
        expected = 28 + n * 24
        if len(payload) != expected:
            raise SketchError(
                f"sketch payload has {len(payload)} bytes, expected {expected}"
            )
        sketch = cls(float(header[0]))
        sketch.count = count
        sketch.total_weight = float(header[1])
        offset = 28
        sketch._values = list(
            np.frombuffer(payload, dtype=np.float64, count=n, offset=offset)
        )
        offset += 8 * n
        sketch._g = list(
            np.frombuffer(payload, dtype=np.float64, count=n, offset=offset)
        )
        offset += 8 * n
        sketch._delta = list(
            np.frombuffer(payload, dtype=np.float64, count=n, offset=offset)
        )
        return sketch

    @property
    def wire_bytes(self) -> int:
        """Size of :meth:`to_bytes` without materializing it."""
        return 28 + len(self._values) * 24

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    @property
    def min_value(self) -> float:
        """Smallest value observed."""
        if self.count == 0:
            raise SketchError("cannot query an empty sketch")
        return self._values[0]

    @property
    def max_value(self) -> float:
        """Largest value observed."""
        if self.count == 0:
            raise SketchError("cannot query an empty sketch")
        return self._values[-1]

    def query(self, quantile: float) -> float:
        """Return a value whose weighted rank is within ``eps * W`` of
        ``quantile * W``."""
        if self.count == 0:
            raise SketchError("cannot query an empty sketch")
        if not 0.0 <= quantile <= 1.0:
            raise SketchError(f"quantile must be in [0, 1], got {quantile}")
        target = quantile * self.total_weight
        slack = self.eps * self.total_weight
        rank_min = np.cumsum(np.asarray(self._g, dtype=np.float64))
        rank_max = rank_min + np.asarray(self._delta, dtype=np.float64)
        ok = (target <= rank_max + slack) & (target <= rank_min + slack)
        if not ok.any():
            return self._values[-1]
        return self._values[int(np.argmax(ok))]

    def quantiles(self, k: int) -> np.ndarray:
        """Return ``k`` evenly spaced interior quantiles (1/(k+1) .. k/(k+1))."""
        if k < 1:
            raise SketchError(f"k must be >= 1, got {k}")
        qs = np.arange(1, k + 1, dtype=np.float64) / (k + 1)
        return np.asarray([self.query(q) for q in qs], dtype=np.float64)


def _from_presorted_weighted(
    sorted_values: np.ndarray, weights: np.ndarray, eps: float
) -> WeightedGKSketch:
    """Build a weighted summary from values presorted ascending."""
    sketch = WeightedGKSketch(eps)
    n = len(sorted_values)
    if n == 0:
        return sketch
    cum_weight = np.cumsum(weights)
    total = float(cum_weight[-1])
    if total <= 0.0:
        # All-zero weights carry no rank information; summarize nothing.
        return sketch
    step = 2.0 * eps * total
    thresholds = np.arange(step, total, step, dtype=np.float64)
    positions = np.searchsorted(cum_weight, thresholds, side="left")
    positions = np.unique(np.concatenate(([0], positions, [n - 1])))
    kept = cum_weight[positions]
    sketch._values = sorted_values[positions].astype(np.float64).tolist()
    sketch._g = np.diff(kept, prepend=0.0).tolist()
    sketch._delta = [0.0] * len(positions)
    sketch.count = n
    sketch.total_weight = total
    return sketch


def sketch_columns(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    n_cols: int,
    eps: float = 0.01,
) -> list[GKSketch]:
    """Build one GK summary per column of a CSR matrix in a single pass.

    Sorts all nonzeros by (column, value) with one lexsort and batch-builds
    each column's summary from its sorted segment — much faster than
    streaming per-value inserts when the shard is already in memory.

    Args:
        indptr, indices, data: CSR arrays (indptr is unused but accepted to
            mirror the matrix signature).
        n_cols: Number of columns (features).
        eps: Rank-error target of each summary.

    Returns:
        A list of ``n_cols`` sketches; columns with no stored values get an
        empty sketch.
    """
    del indptr  # column sketches only need (column, value) pairs
    order = np.lexsort((data, indices))
    sorted_cols = indices[order]
    sorted_vals = data[order].astype(np.float64)
    boundaries = np.searchsorted(sorted_cols, np.arange(n_cols + 1))
    sketches: list[GKSketch] = []
    for col in range(n_cols):
        lo, hi = int(boundaries[col]), int(boundaries[col + 1])
        if hi > lo:
            sketches.append(_from_presorted(sorted_vals[lo:hi], eps))
        else:
            sketches.append(GKSketch(eps))
    return sketches


def _from_presorted(sorted_values: np.ndarray, eps: float) -> GKSketch:
    """Like :meth:`GKSketch.from_values` but skips the sort."""
    sketch = GKSketch(eps)
    n = len(sorted_values)
    step = max(1, int(math.floor(2.0 * eps * n)))
    positions = np.arange(0, n, step, dtype=np.int64)
    if positions[-1] != n - 1:
        positions = np.append(positions, n - 1)
    sketch._values = sorted_values[positions].astype(np.float64).tolist()
    sketch._g = np.diff(positions, prepend=-1).tolist()
    sketch._delta = [0] * len(positions)
    sketch.count = n
    return sketch


def sketch_columns_weighted(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    n_cols: int,
    row_weights: np.ndarray,
    eps: float = 0.01,
) -> list[WeightedGKSketch]:
    """Build one weighted summary per column of a CSR matrix.

    Each stored value is weighted by its row's weight (the engine passes
    per-instance hessians or sample weights), so the proposed cut points
    equalize *weight* mass per bucket rather than instance mass — the
    weighted candidate rule of Huang & Yi / XGBoost.

    Args:
        indptr, indices, data: CSR arrays.
        n_cols: Number of columns (features).
        row_weights: One weight per row, ``len(indptr) - 1`` entries.
        eps: Weighted-rank-error target of each summary.

    Returns:
        A list of ``n_cols`` sketches; columns with no stored values get
        an empty sketch.
    """
    n_rows = len(indptr) - 1
    weights = np.asarray(row_weights, dtype=np.float64)
    if len(weights) != n_rows:
        raise SketchError(
            f"row_weights has {len(weights)} entries for {n_rows} rows"
        )
    row_of = np.repeat(np.arange(n_rows, dtype=np.int64), np.diff(indptr))
    nnz_weights = weights[row_of]
    order = np.lexsort((data, indices))
    sorted_cols = indices[order]
    sorted_vals = data[order].astype(np.float64)
    sorted_wts = nnz_weights[order]
    boundaries = np.searchsorted(sorted_cols, np.arange(n_cols + 1))
    sketches: list[WeightedGKSketch] = []
    for col in range(n_cols):
        lo, hi = int(boundaries[col]), int(boundaries[col + 1])
        if hi > lo:
            sketches.append(
                _from_presorted_weighted(
                    sorted_vals[lo:hi], sorted_wts[lo:hi], eps
                )
            )
        else:
            sketches.append(WeightedGKSketch(eps))
    return sketches


# ----------------------------------------------------------------------
# tagged wire format (what push_sketch actually sends)
# ----------------------------------------------------------------------

_WIRE_KIND_GK = 0
_WIRE_KIND_WEIGHTED = 1

AnySketch = GKSketch | WeightedGKSketch


def sketch_to_wire(sketch: AnySketch) -> bytes:
    """Frame a sketch for the fabric: 1-byte kind tag + ``to_bytes``.

    The tag lets the server host unweighted and weighted summaries behind
    the same handler without guessing from payload length.  The untagged
    :meth:`GKSketch.to_bytes` layout is unchanged.
    """
    if isinstance(sketch, WeightedGKSketch):
        return bytes([_WIRE_KIND_WEIGHTED]) + sketch.to_bytes()
    if isinstance(sketch, GKSketch):
        return bytes([_WIRE_KIND_GK]) + sketch.to_bytes()
    raise SketchError(f"cannot serialize {type(sketch).__name__} for the wire")


def sketch_from_wire(payload: bytes) -> AnySketch:
    """Inverse of :func:`sketch_to_wire`."""
    if len(payload) < 1:
        raise SketchError("empty sketch wire payload")
    kind = payload[0]
    if kind == _WIRE_KIND_GK:
        return GKSketch.from_bytes(payload[1:])
    if kind == _WIRE_KIND_WEIGHTED:
        return WeightedGKSketch.from_bytes(payload[1:])
    raise SketchError(f"unknown sketch wire tag {kind}")
