"""NDJSON-over-TCP front end for the serving runtime (stdlib only).

One JSON object per line, one response line per request, connections
multiplex freely (each line is independent).  Operations::

    {"op": "score", "features": [[3, 1.0], [17, 0.5]], "deadline_ms": 50}
      -> {"ok": true, "value": 0.61, "raw": 0.44, "version": 1,
          "batch_seq": 9, "batch_size": 4, "queued_ms": 1.2,
          "score_ms": 0.3}
    {"op": "swap", "model": "/path/to/model.json"}
      -> {"ok": true, "version": 2}
    {"op": "stats"}   -> {"ok": true, "stats": {...metrics snapshot...}}
    {"op": "ping"}    -> {"ok": true, "version": 1, "n_features": 47236}
    {"op": "shutdown"} -> {"ok": true} (then the server stops)

``op`` defaults to ``"score"`` so the hot path can omit it.  A shed
request answers ``{"ok": false, "error": "rejected", "reason": ...}``
— explicit load shedding is part of the wire contract, not an
exception.
"""

from __future__ import annotations

import asyncio
import json

from ..errors import ReproError, RequestRejectedError
from .runtime import ServingRuntime

__all__ = ["ServingServer"]


class ServingServer:
    """Binds a :class:`ServingRuntime` to an asyncio TCP listener.

    Args:
        runtime: A started (or startable) runtime; the server starts it
            if needed on :meth:`start`.
        host: Interface to bind.
        port: Port to bind; 0 picks a free one (read :attr:`port` after
            :meth:`start`).
    """

    def __init__(
        self,
        runtime: ServingRuntime,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.runtime = runtime
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._shutdown = asyncio.Event()

    async def start(self) -> None:
        """Start the runtime (if stopped) and begin listening."""
        if not self.runtime.running:
            await self.runtime.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`close`) arrives."""
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        """Stop listening and stop the runtime."""
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.runtime.running:
            await self.runtime.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, line: bytes) -> dict:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": "bad_json", "detail": str(exc)}
        if not isinstance(payload, dict):
            return {
                "ok": False,
                "error": "bad_request",
                "detail": "each line must be a JSON object",
            }
        op = payload.get("op", "score")
        try:
            if op == "score":
                return await self._op_score(payload)
            if op == "swap":
                return await self._op_swap(payload)
            if op == "stats":
                return {"ok": True, "stats": self.runtime.metrics.snapshot()}
            if op == "ping":
                version = self.runtime.store.current()
                return {
                    "ok": True,
                    "version": version.version,
                    "n_features": version.n_features,
                    "n_trees": version.model.n_trees,
                }
            if op == "shutdown":
                self._shutdown.set()
                return {"ok": True}
        except RequestRejectedError as exc:
            return {"ok": False, "error": "rejected", "reason": exc.reason,
                    "detail": str(exc)}
        except ReproError as exc:
            return {"ok": False, "error": "bad_request", "detail": str(exc)}
        return {"ok": False, "error": "unknown_op", "detail": repr(op)}

    async def _op_score(self, payload: dict) -> dict:
        features = payload.get("features", [])
        try:
            indices = [int(pair[0]) for pair in features]
            values = [float(pair[1]) for pair in features]
        except (TypeError, ValueError, IndexError):
            return {
                "ok": False,
                "error": "bad_request",
                "detail": "features must be [[index, value], ...]",
            }
        deadline_ms = payload.get("deadline_ms")
        prediction = await self.runtime.submit(
            indices,
            values,
            deadline_ms=float(deadline_ms) if deadline_ms is not None else None,
        )
        return {
            "ok": True,
            "value": prediction.value,
            "raw": prediction.raw,
            "version": prediction.version,
            "batch_seq": prediction.batch_seq,
            "batch_size": prediction.batch_size,
            "queued_ms": prediction.queued_ms,
            "score_ms": prediction.score_ms,
        }

    async def _op_swap(self, payload: dict) -> dict:
        path = payload.get("model")
        if not isinstance(path, str):
            return {
                "ok": False,
                "error": "bad_request",
                "detail": "swap needs a 'model' artifact path",
            }
        version = await self.runtime.swap(path)
        return {"ok": True, "version": version.version}
