"""Tests for per-node tree statistics (gain/cover) and the text dump."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GBDT, TrainConfig
from repro.errors import TrainingError
from repro.tree import RegressionTree


@pytest.fixture(scope="module")
def trained(small_dataset):
    trainer = GBDT(TrainConfig(n_trees=2, max_depth=4, learning_rate=0.3))
    model = trainer.fit(small_dataset)
    return model, small_dataset


class TestStats:
    def test_internal_nodes_have_positive_gain(self, trained):
        model, _ = trained
        for tree in model.trees:
            internal = tree.split_feature >= 0
            assert np.all(tree.gain[internal] > 0)

    def test_cover_is_hessian_mass(self, trained):
        """The root's cover equals the total hessian mass of the data."""
        model, data = trained
        from repro.boosting.losses import get_loss

        loss = get_loss("logistic")
        raw = np.full(data.n_instances, model.base_score)
        _, hess = loss.gradients(data.y, raw)
        tree0 = model.trees[0]
        assert tree0.cover[0] == pytest.approx(hess.sum(), rel=1e-9)

    def test_children_cover_sums_to_parent(self, trained):
        model, _ = trained
        for tree in model.trees:
            for node in range(tree.max_nodes):
                if tree.is_internal(node):
                    left, right = 2 * node + 1, 2 * node + 2
                    if tree.cover[left] and tree.cover[right]:
                        assert tree.cover[node] == pytest.approx(
                            tree.cover[left] + tree.cover[right], rel=1e-6
                        )

    def test_stats_survive_serialization(self, trained):
        model, _ = trained
        tree = model.trees[0]
        clone = RegressionTree.from_dict(tree.to_dict())
        np.testing.assert_allclose(clone.gain, tree.gain)
        np.testing.assert_allclose(clone.cover, tree.cover)

    def test_distributed_records_stats(self, small_dataset):
        from repro import ClusterConfig, train_distributed

        config = TrainConfig(n_trees=1, max_depth=3, n_split_candidates=8)
        result = train_distributed(
            "dimboost", small_dataset, ClusterConfig(2, 2), config
        )
        tree = result.model.trees[0]
        if tree.is_internal(0):
            assert tree.gain[0] > 0
            assert tree.cover[0] > 0


class TestTextDump:
    def test_renders_all_nodes(self, trained):
        model, _ = trained
        tree = model.trees[0]
        text = tree.to_text()
        n_lines = len(text.splitlines())
        assert n_lines == tree.n_internal + tree.n_leaves

    def test_contains_split_and_leaf_markers(self, trained):
        model, _ = trained
        text = model.trees[0].to_text()
        assert "[f" in text
        assert "leaf=" in text
        assert "gain=" in text

    def test_indentation_tracks_depth(self):
        tree = RegressionTree(3)
        tree.set_split(0, 1, 0.5, gain=2.0, cover=10.0)
        tree.set_leaf(1, -1.0, cover=4.0)
        tree.set_split(2, 0, 1.5, gain=1.0, cover=6.0)
        tree.set_leaf(5, 0.5, cover=3.0)
        tree.set_leaf(6, 1.5, cover=3.0)
        lines = tree.to_text().splitlines()
        assert lines[0].startswith("0:")
        assert lines[1].startswith("  1:")
        assert lines[3].startswith("    5:")

    def test_empty_tree_rejected(self):
        with pytest.raises(TrainingError):
            RegressionTree(2).to_text()
