"""Tests for parallel batch histogram construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.histogram import build_histogram_batched, build_node_histogram_sparse
from repro.histogram.parallel import simulate_span


class TestBatchedBuild:
    def test_matches_single_pass(self, tiny_shard, rng):
        g = rng.normal(size=tiny_shard.n_rows)
        h = rng.random(tiny_shard.n_rows)
        rows = np.arange(tiny_shard.n_rows)
        direct = build_node_histogram_sparse(tiny_shard, rows, g, h)
        result = build_histogram_batched(
            tiny_shard, rows, g, h, batch_size=37, n_threads=4
        )
        assert result.histogram.allclose(direct, atol=1e-9)
        assert result.n_batches == -(-len(rows) // 37)

    def test_real_threads_match(self, tiny_shard, rng):
        g = rng.normal(size=tiny_shard.n_rows)
        h = rng.random(tiny_shard.n_rows)
        rows = np.arange(tiny_shard.n_rows)
        direct = build_node_histogram_sparse(tiny_shard, rows, g, h)
        result = build_histogram_batched(
            tiny_shard, rows, g, h, batch_size=50, n_threads=4, use_real_threads=True
        )
        assert result.histogram.allclose(direct, atol=1e-9)

    def test_single_batch_when_small(self, tiny_shard, rng):
        g = rng.normal(size=tiny_shard.n_rows)
        h = rng.random(tiny_shard.n_rows)
        rows = np.arange(10)
        result = build_histogram_batched(
            tiny_shard, rows, g, h, batch_size=10_000, n_threads=4
        )
        assert result.n_batches == 1

    def test_empty_rows(self, tiny_shard, rng):
        g = rng.normal(size=tiny_shard.n_rows)
        h = rng.random(tiny_shard.n_rows)
        result = build_histogram_batched(
            tiny_shard, np.array([], dtype=np.int64), g, h, batch_size=10
        )
        assert result.histogram.grad.sum() == 0.0

    def test_span_at_most_wall(self, tiny_shard, rng):
        """With q threads the simulated span can't exceed the serial sum."""
        g = rng.normal(size=tiny_shard.n_rows)
        h = rng.random(tiny_shard.n_rows)
        rows = np.arange(tiny_shard.n_rows)
        result = build_histogram_batched(
            tiny_shard, rows, g, h, batch_size=20, n_threads=8
        )
        assert result.span_seconds <= sum(result.batch_seconds) + 1e-9
        assert result.span_seconds >= max(result.batch_seconds) - 1e-9

    def test_invalid_batch_size(self, tiny_shard, rng):
        g = rng.normal(size=tiny_shard.n_rows)
        h = rng.random(tiny_shard.n_rows)
        with pytest.raises(TrainingError):
            build_histogram_batched(tiny_shard, np.arange(5), g, h, batch_size=0)


class TestSimulateSpan:
    def test_single_thread_is_sum(self):
        assert simulate_span([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_enough_threads_is_max(self):
        assert simulate_span([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)

    def test_greedy_schedule(self):
        # Two threads, arrival order: t0 gets 4, t1 gets 1 then 1 then 1.
        assert simulate_span([4.0, 1.0, 1.0, 1.0], 2) == pytest.approx(4.0)

    def test_parallel_speedup_monotone(self):
        jobs = [0.5] * 16
        spans = [simulate_span(jobs, q) for q in (1, 2, 4, 8)]
        assert spans == sorted(spans, reverse=True)

    def test_empty_jobs(self):
        assert simulate_span([], 4) == 0.0

    def test_invalid_threads(self):
        with pytest.raises(TrainingError):
            simulate_span([1.0], 0)


class TestBatchTimeAttribution:
    def test_batch_seconds_indexed_by_batch_under_threads(self, tiny_shard, rng):
        """Each slot of batch_seconds belongs to its batch even when real
        threads finish out of order."""
        import time

        from repro.histogram.histogram import GradientHistogram

        g = rng.normal(size=tiny_shard.n_rows)
        h = rng.random(tiny_shard.n_rows)
        rows = np.arange(120)
        batch_size = 30
        delays = {0: 0.05, 30: 0.0, 60: 0.02, 90: 0.0}  # keyed by first row

        def sleeping_kernel(shard, batch, grad, hess):
            time.sleep(delays[int(batch[0])])
            return GradientHistogram.zeros(shard.n_features, shard.n_bins)

        result = build_histogram_batched(
            tiny_shard,
            rows,
            g,
            h,
            batch_size=batch_size,
            n_threads=4,
            use_real_threads=True,
            kernel=sleeping_kernel,
        )
        assert result.backend == "threads"
        # Batch 0 slept longest, so its slot must hold the largest time —
        # regardless of the order the threads completed in.
        assert int(np.argmax(result.batch_seconds)) == 0
        assert result.batch_seconds[0] >= 0.05

    def test_serial_seconds_and_backend_fields(self, tiny_shard, rng):
        g = rng.normal(size=tiny_shard.n_rows)
        h = rng.random(tiny_shard.n_rows)
        rows = np.arange(tiny_shard.n_rows)
        result = build_histogram_batched(
            tiny_shard, rows, g, h, batch_size=50, n_threads=4
        )
        assert result.backend == "simulated"
        assert result.serial_seconds == pytest.approx(sum(result.batch_seconds))

    def test_real_speedup_guard_on_zero_wall(self, tiny_shard, rng):
        from repro.histogram.parallel import ParallelBuildResult

        result = ParallelBuildResult(
            histogram=None,
            n_batches=0,
            batch_seconds=(),
            span_seconds=0.0,
            wall_seconds=0.0,
        )
        assert result.real_speedup == 1.0
