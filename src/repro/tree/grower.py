"""Layer-wise tree growth — the single-process reference engine.

"We use a layer-wise scheme to consecutively add active nodes — after
splitting the current layer, we set the tree nodes of the next layer to
active and continue to split the next layer" (Section 4.4).

The grower drives, per layer: histogram construction for each active
node (sparsity-aware by default; the dense "traditional" path and the
no-index full-scan path remain available so the Table 3 ablation can
switch each optimization off), split finding over the histograms, and
node splitting through the node-to-instance index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import TrainConfig
from ..errors import TrainingError
from ..histogram.binned import BinnedShard
from ..histogram.histogram import GradientHistogram
from ..histogram.index import NodeInstanceIndex
from ..runtime.build import HistogramBuildStrategy, resolve_build_strategy
from ..sketch.candidates import CandidateSet
from .split import SplitDecision, find_best_split, leaf_weight
from .tree import RegressionTree


@dataclass
class GrownTree:
    """Result of growing one tree on one shard.

    Attributes:
        tree: The finished tree (leaf weights already shrunk by eta).
        leaf_of_rows: Leaf slot of every shard row — the training-set
            predictions come for free from the node-to-instance index.
        n_histograms: Histograms built (ablation metric).
    """

    tree: RegressionTree
    leaf_of_rows: np.ndarray
    n_histograms: int


class LayerwiseGrower:
    """Grows regression trees over one :class:`BinnedShard`.

    Args:
        shard: Pre-bucketized training data.
        candidates: The split candidates the shard was binned with.
        config: Hyper-parameters.
        sparse_build: Use the Algorithm 2 builder (True) or the
            traditional dense scan (False) — the Table 3 row 1 ablation.
        use_index: Track node membership in the node-to-instance index
            (True) or rediscover each node's rows with a full scan of a
            per-row node map (False) — the Table 3 row 3 ablation.
        batched: Build each histogram in parallel batches (Section 5.2).
        subtraction: Derive each node's sibling histogram as parent
            minus child instead of building both — an extension beyond
            the paper (LightGBM's trick): only the smaller child of every
            split is built, roughly halving per-layer build work at the
            cost of keeping the parent histograms of one layer in memory.
        build_strategy: Explicit histogram build strategy; overrides the
            ``sparse_build`` / ``batched`` resolution when given.
    """

    def __init__(
        self,
        shard: BinnedShard,
        candidates: CandidateSet,
        config: TrainConfig,
        sparse_build: bool = True,
        use_index: bool = True,
        batched: bool = False,
        subtraction: bool = False,
        build_strategy: HistogramBuildStrategy | None = None,
    ) -> None:
        if shard.n_features != candidates.n_features:
            raise TrainingError(
                "shard and candidates disagree on the feature count"
            )
        self.shard = shard
        self.candidates = candidates
        self.config = config
        self.sparse_build = sparse_build
        self.use_index = use_index
        self.batched = batched
        self.subtraction = subtraction
        self.build_strategy = (
            build_strategy
            if build_strategy is not None
            else resolve_build_strategy(config, sparse=sparse_build, batched=batched)
        )

    # ------------------------------------------------------------------
    # histogram construction for one node
    # ------------------------------------------------------------------

    def build_histogram(self, rows: np.ndarray) -> GradientHistogram:
        """Build one node histogram per the configured strategy."""
        histogram, _seconds = self.build_strategy.build(
            self.shard, rows, self._grad, self._hess
        )
        return histogram

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------

    def grow(
        self,
        grad: np.ndarray,
        hess: np.ndarray,
        feature_valid: np.ndarray | None = None,
    ) -> GrownTree:
        """Grow one tree from per-row gradients.

        Args:
            grad, hess: First/second-order gradients per shard row.
            feature_valid: Optional per-feature sampling mask.

        Returns:
            The grown tree with per-row leaf assignments.
        """
        config = self.config
        shard = self.shard
        if len(grad) != shard.n_rows or len(hess) != shard.n_rows:
            raise TrainingError(
                f"gradients must match shard rows ({shard.n_rows}), got "
                f"{len(grad)}/{len(hess)}"
            )
        self._grad = np.asarray(grad, dtype=np.float64)
        self._hess = np.asarray(hess, dtype=np.float64)

        tree = RegressionTree(config.max_depth)
        index = NodeInstanceIndex(shard.n_rows, config.max_nodes)
        # The no-index ablation keeps a per-row node map instead and scans
        # it for every node's membership (the dataset re-scan the paper's
        # index avoids).
        node_of = np.zeros(shard.n_rows, dtype=np.int64)

        active = [0]
        n_histograms = 0
        eta = config.learning_rate
        # Parent histograms kept for one layer when subtraction is on.
        parent_hists: dict[int, GradientHistogram] = {}

        for depth in range(1, config.max_depth + 1):
            if not active:
                break
            if depth == config.max_depth:
                for node in active:
                    rows = self._rows_of(index, node_of, node)
                    g, h = self._grad[rows].sum(), self._hess[rows].sum()
                    tree.set_leaf(
                        node,
                        eta * leaf_weight(g, h, config.reg_lambda),
                        cover=float(h),
                    )
                active = []
                break

            layer_hists, n_built = self._layer_histograms(
                index, node_of, active, parent_hists
            )
            n_histograms += n_built
            next_active: list[int] = []
            parent_hists = {}
            for node in active:
                rows = self._rows_of(index, node_of, node)
                histogram = layer_hists.pop(node, None)
                if histogram is None:
                    g, h = self._grad[rows].sum(), self._hess[rows].sum()
                    tree.set_leaf(
                        node,
                        eta * leaf_weight(g, h, config.reg_lambda),
                        cover=float(h),
                    )
                    continue
                decision = find_best_split(
                    histogram,
                    self.candidates,
                    config.reg_lambda,
                    config.reg_gamma,
                    config.min_child_weight,
                    feature_valid,
                )
                if decision is None or decision.gain <= config.min_split_gain:
                    g, h = histogram.totals()
                    tree.set_leaf(
                        node,
                        eta * leaf_weight(g, h, config.reg_lambda),
                        cover=float(h),
                    )
                    continue
                left, right = self._apply_split(
                    tree, index, node_of, node, rows, decision
                )
                if self.subtraction and depth + 1 < config.max_depth:
                    # Keep the parent histogram so one child per pair can
                    # be derived by subtraction next layer.
                    parent_hists[node] = histogram
                next_active.extend((left, right))
            active = next_active

        leaf_of_rows = self._final_leaves(tree, index, node_of)
        return GrownTree(tree=tree, leaf_of_rows=leaf_of_rows, n_histograms=n_histograms)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _layer_histograms(
        self,
        index: NodeInstanceIndex,
        node_of: np.ndarray,
        active: list[int],
        parent_hists: dict[int, GradientHistogram],
    ) -> tuple[dict[int, GradientHistogram], int]:
        """Histograms for every sufficiently-populated node of a layer.

        With ``subtraction`` on and the parent's histogram cached, only
        the smaller sibling of each pair is built; the other is derived
        as ``parent - sibling``.  Nodes with fewer than two instances get
        no histogram (the caller turns them into leaves).

        Returns (histograms by node, number actually built).
        """
        hists: dict[int, GradientHistogram] = {}
        n_built = 0
        active_set = set(active)
        done: set[int] = set()
        for node in active:
            if node in done:
                continue
            rows = self._rows_of(index, node_of, node)
            sibling = node + 1 if node % 2 == 1 else node - 1
            parent = (node - 1) // 2 if node > 0 else -1
            phist = parent_hists.get(parent) if self.subtraction else None
            if phist is not None and sibling in active_set:
                sib_rows = self._rows_of(index, node_of, sibling)
                small, small_rows, large = (
                    (node, rows, sibling)
                    if len(rows) <= len(sib_rows)
                    else (sibling, sib_rows, node)
                )
                built = self.build_histogram(small_rows)
                n_built += 1
                hists[small] = built
                hists[large] = phist.subtract(built)
                done.update((node, sibling))
                continue
            if len(rows) >= 2:
                hists[node] = self.build_histogram(rows)
                n_built += 1
            done.add(node)
        return hists, n_built

    def _rows_of(
        self, index: NodeInstanceIndex, node_of: np.ndarray, node: int
    ) -> np.ndarray:
        if self.use_index:
            return index.rows_of(node)
        # Full scan: O(N) per node, the cost the index removes (Table 3).
        return np.nonzero(node_of == node)[0]

    def _apply_split(
        self,
        tree: RegressionTree,
        index: NodeInstanceIndex,
        node_of: np.ndarray,
        node: int,
        rows: np.ndarray,
        decision: SplitDecision,
    ) -> tuple[int, int]:
        left, right = tree.set_split(
            node,
            decision.feature,
            decision.value,
            gain=decision.gain,
            cover=decision.total_hess,
        )
        goes_left = self.shard.split_mask(rows, decision.feature, decision.bucket)
        if self.use_index:
            index.split(node, goes_left)
        node_of[rows[goes_left]] = left
        node_of[rows[~goes_left]] = right
        return left, right

    def _final_leaves(
        self,
        tree: RegressionTree,
        index: NodeInstanceIndex,
        node_of: np.ndarray,
    ) -> np.ndarray:
        if self.use_index:
            leaf_of_rows = np.zeros(self.shard.n_rows, dtype=np.int64)
            for node in range(tree.max_nodes):
                if tree.is_leaf(node) and index.has_node(node):
                    leaf_of_rows[index.rows_of(node)] = node
            return leaf_of_rows
        return node_of.copy()
