"""Deterministic random-number-generator plumbing.

Every stochastic component of the library (synthetic data, feature
sampling, stochastic rounding) receives a :class:`numpy.random.Generator`
derived from a user-supplied seed through :func:`spawn_rng`.  Deriving
child generators by *key* rather than by call order keeps results stable
when unrelated components are added or removed.
"""

from __future__ import annotations

import zlib

import numpy as np


def spawn_rng(seed: int, *keys: object) -> np.random.Generator:
    """Return a generator derived deterministically from ``seed`` and ``keys``.

    Args:
        seed: The run-level seed.
        *keys: Any hashable-by-repr values naming the consumer, e.g.
            ``spawn_rng(seed, "feature_sampling", tree_index)``.  The same
            (seed, keys) pair always yields the same stream; different keys
            yield independent streams.

    Returns:
        A freshly seeded ``numpy.random.Generator``.
    """
    material = repr((seed,) + keys).encode("utf-8")
    # crc32 is stable across processes and Python versions, unlike hash().
    child_seed = zlib.crc32(material)
    return np.random.default_rng(np.random.SeedSequence([seed & 0x7FFFFFFF, child_seed]))
