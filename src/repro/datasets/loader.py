"""LibSVM-format text IO for sparse datasets.

LibSVM is the de-facto exchange format for sparse GBDT training data
(XGBoost and LightGBM both read it).  A line looks like::

    <label> <index>:<value> <index>:<value> ...

Indices in files are conventionally 1-based; this loader accepts both and
normalizes to 0-based (``one_based=True`` by default, matching the public
RCV1 distribution).
"""

from __future__ import annotations

import os
from typing import IO, Iterable

import numpy as np

from ..errors import DataError
from .dataset import Dataset
from .sparse import CSRMatrix


def _parse_line(line: str, line_no: int, one_based: bool) -> tuple[float, list[int], list[float]]:
    parts = line.split()
    try:
        label = float(parts[0])
    except ValueError as exc:
        raise DataError(f"line {line_no}: bad label {parts[0]!r}") from exc
    idxs: list[int] = []
    vals: list[float] = []
    for token in parts[1:]:
        if token.startswith("#"):
            break  # trailing comment
        try:
            idx_str, val_str = token.split(":", 1)
            idx = int(idx_str)
            val = float(val_str)
        except ValueError as exc:
            raise DataError(f"line {line_no}: bad feature token {token!r}") from exc
        if one_based:
            idx -= 1
        if idx < 0:
            raise DataError(f"line {line_no}: feature index {idx} below range")
        idxs.append(idx)
        vals.append(val)
    return label, idxs, vals


def load_libsvm(
    path: str | os.PathLike[str],
    n_features: int | None = None,
    one_based: bool = True,
    name: str | None = None,
) -> Dataset:
    """Load a LibSVM text file into a :class:`Dataset`.

    Args:
        path: File path.
        n_features: Force the dimensionality; inferred from the max index
            seen if omitted.
        one_based: Whether feature indices in the file start at 1.
        name: Dataset name; defaults to the file's basename.

    Raises:
        DataError: On malformed lines or indices beyond ``n_features``.
    """
    labels: list[float] = []
    indptr: list[int] = [0]
    indices: list[int] = []
    data: list[float] = []
    max_index = -1
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            label, idxs, vals = _parse_line(line, line_no, one_based)
            order = np.argsort(idxs, kind="stable")
            sorted_idxs = [idxs[j] for j in order]
            if any(a == b for a, b in zip(sorted_idxs, sorted_idxs[1:])):
                raise DataError(f"line {line_no}: duplicate feature index")
            labels.append(label)
            indices.extend(sorted_idxs)
            data.extend(vals[j] for j in order)
            indptr.append(len(indices))
            if sorted_idxs:
                max_index = max(max_index, sorted_idxs[-1])
    if n_features is None:
        n_features = max_index + 1 if max_index >= 0 else 0
    elif max_index >= n_features:
        raise DataError(
            f"file contains index {max_index}, beyond n_features={n_features}"
        )
    X = CSRMatrix(
        np.asarray(indptr, dtype=np.int64),
        np.asarray(indices, dtype=np.int32),
        np.asarray(data, dtype=np.float32),
        (len(labels), n_features),
    )
    return Dataset(X, np.asarray(labels, dtype=np.float32), name or os.path.basename(str(path)))


def save_libsvm(
    dataset: Dataset, path: str | os.PathLike[str], one_based: bool = True
) -> None:
    """Write ``dataset`` to ``path`` in LibSVM text format."""
    offset = 1 if one_based else 0
    with open(path, "w", encoding="utf-8") as handle:
        _write_rows(handle, dataset, offset)


def _write_rows(handle: IO[str], dataset: Dataset, offset: int) -> None:
    for i, (idxs, vals) in enumerate(dataset.X.iter_rows()):
        tokens: Iterable[str] = (
            f"{int(idx) + offset}:{float(val):g}" for idx, val in zip(idxs, vals)
        )
        label = dataset.y[i]
        label_str = f"{int(label)}" if float(label).is_integer() else f"{label:g}"
        handle.write(" ".join([label_str, *tokens]) + "\n")
