"""Wall-clock timing helpers used by trainers and benchmarks.

This module is the *audited clock seam*: outside the phase accounting
modules (``runtime/phases.py`` / ``runtime/build.py``), code must not
read ``time.*`` directly (reprolint RP002) and instead calls
:func:`wall_clock` or uses a :class:`Stopwatch`.  Funnelling every real-
time read through one module keeps measured seconds attributable (a
grep for ``wall_clock`` finds every timing site) and lets determinism
tests stub the clock in exactly one place.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def wall_clock() -> float:
    """The audited wall-clock read: a monotonic seconds counter.

    Returns the same value stream as ``time.perf_counter()``; only this
    module may call the primitive directly.
    """
    # The seam primitive itself is the one sanctioned direct clock read.
    return time.perf_counter()  # reprolint: disable=RP002


class Stopwatch:
    """Accumulating stopwatch for measuring real compute time.

    Usage::

        sw = Stopwatch()
        with sw:
            do_work()
        print(sw.total)
    """

    def __init__(self) -> None:
        self.total: float = 0.0
        self._started_at: float | None = None

    def __enter__(self) -> "Stopwatch":
        # Seam-internal read: Stopwatch is part of the audited clock seam.
        self._started_at = time.perf_counter()  # reprolint: disable=RP002
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._started_at is not None:
            # Seam-internal read paired with __enter__ above.
            now = time.perf_counter()  # reprolint: disable=RP002
            self.total += now - self._started_at
            self._started_at = None

    def reset(self) -> None:
        """Zero the accumulated total."""
        self.total = 0.0
        self._started_at = None


@dataclass
class TimeBreakdown:
    """Per-phase time decomposition reported by distributed trainers.

    Mirrors the decomposition of Appendix A.2 (Figure 13): data loading,
    computation, and communication.  ``computation`` is real measured
    wall-clock of the histogram/split kernels (divided by the simulated
    parallelism where applicable); ``communication`` is simulated time
    charged by the network cost model.
    """

    loading: float = 0.0
    computation: float = 0.0
    communication: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Sum of all accounted time."""
        return self.loading + self.computation + self.communication + sum(
            self.extra.values()
        )

    def add(self, other: "TimeBreakdown") -> None:
        """Accumulate ``other`` into this breakdown in place."""
        self.loading += other.loading
        self.computation += other.computation
        self.communication += other.communication
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value

    def as_dict(self) -> dict[str, float]:
        """Return a flat dict suitable for printing or JSON dumping."""
        out = {
            "loading": self.loading,
            "computation": self.computation,
            "communication": self.communication,
            "total": self.total,
        }
        out.update(self.extra)
        return out
