"""Analysis utilities: communication-cost curves, PCA, and reprolint.

* :mod:`commcost` — tabulates the Table 1 closed forms over worker/size
  sweeps and locates crossovers (the Section 3 "Remarks" discussion).
* :mod:`pca` — randomized PCA over :class:`CSRMatrix`, the dimension-
  reduction baseline of Table 6.
* :mod:`reprolint` — AST-based static checker enforcing the repo's
  determinism, shared-memory, fork-safety, and PS-idempotency
  contracts (``python -m repro.analysis``); see
  ``docs/static-analysis.md``.
"""

from .commcost import CostTable, tabulate_costs, speedup_table
from .pca import PCAModel, fit_pca
from .reprolint import (
    Finding,
    LintResult,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    to_json,
)

__all__ = [
    "CostTable",
    "tabulate_costs",
    "speedup_table",
    "PCAModel",
    "fit_pca",
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "to_json",
]
