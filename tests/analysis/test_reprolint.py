"""reprolint tests: the fixture corpus, suppressions, reporters, and CLI.

Every rule has a known-bad fixture whose violations are marked inline
with ``# expect: RPxxx`` comments and a known-good twin that must lint
clean *under the same pretend path* (so path-scoped rules are genuinely
in scope, not vacuously silent).  Whole-program rules (RP007–RP010) run
their fixtures through :func:`lint_sources`, which builds the project
graph the per-module entry points skip.  The src-tree test then pins
the repo's own waiver budget: the tree is clean, and the only
suppressions are the audited ones in the timing seam, the worker-view
caches, and the shm segment-name generators.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.reprolint import (
    JSON_SCHEMA_VERSION,
    all_rules,
    get_rules,
    lint_file,
    lint_paths,
    lint_source,
    lint_sources,
    render_json,
    render_text,
    to_json,
)
from repro.analysis.reprolint.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
SRC_ROOT = Path(__file__).resolve().parents[2] / "src"

#: (code, pretend rel_path) — the path places each fixture inside the
#: package scope its rule patrols.
RULE_PATHS = {
    "RP001": "repro/boosting/fixture.py",
    "RP002": "repro/distributed/fixture.py",
    "RP003": "repro/histogram/fixture.py",
    "RP004": "repro/histogram/fixture.py",
    "RP005": "repro/histogram/fixture.py",
    "RP006": "repro/ps/fixture.py",
    "RP007": "repro/serving/fixture.py",
    "RP008": "repro/serving/fixture.py",
    "RP009": "repro/tree/fixture.py",
    "RP010": "repro/distributed/fixture.py",
}
ALL_CODES = sorted(RULE_PATHS)
#: Rules that need the whole-program pass (fixtures go through
#: lint_sources; lint_source leaves them silent by design).
GRAPH_CODES = frozenset({"RP007", "RP008", "RP009", "RP010"})


def fixture_source(code: str, kind: str) -> str:
    return (FIXTURES / f"{code.lower()}_{kind}.py").read_text(encoding="utf-8")


def expected_lines(source: str, code: str) -> list[int]:
    """1-based lines carrying an ``# expect: <code>`` marker."""
    return [
        lineno
        for lineno, text in enumerate(source.splitlines(), start=1)
        if f"expect: {code}" in text
    ]


def fixture_findings(code: str, source: str):
    """Lint a fixture the way its rule requires (module vs project)."""
    path = RULE_PATHS[code]
    rules = get_rules(select=[code])
    if code in GRAPH_CODES:
        return lint_sources({path: source}, rules=rules).findings
    return lint_source(source, path, rules)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


def test_registry_has_all_ten_rules():
    assert [rule.code for rule in all_rules()] == ALL_CODES
    for rule in all_rules():
        assert rule.summary and rule.invariant and rule.name


def test_get_rules_select_and_ignore():
    selected = get_rules(select=["RP002", "RP005"])
    assert [rule.code for rule in selected] == ["RP002", "RP005"]
    remaining = get_rules(ignore=["RP001"])
    assert "RP001" not in {rule.code for rule in remaining}


def test_get_rules_rejects_unknown_codes():
    with pytest.raises(ValueError, match="RP999"):
        get_rules(select=["RP999"])


# ----------------------------------------------------------------------
# per-rule fixture corpus
# ----------------------------------------------------------------------


@pytest.mark.parametrize("code", ALL_CODES)
def test_bad_fixture_flagged_at_expected_lines(code):
    source = fixture_source(code, "bad")
    expected = expected_lines(source, code)
    assert expected, f"{code} bad fixture has no expect markers"
    findings = fixture_findings(code, source)
    assert sorted(f.line for f in findings) == expected
    assert all(f.rule == code and not f.suppressed for f in findings)


@pytest.mark.parametrize("code", ALL_CODES)
def test_good_twin_is_clean(code):
    source = fixture_source(code, "good")
    assert fixture_findings(code, source) == []


@pytest.mark.parametrize("code", sorted(GRAPH_CODES))
def test_graph_rules_need_the_project_pass(code):
    """Single-module lint_source must leave whole-program rules silent,
    not half-fire on a graph it never built."""
    source = fixture_source(code, "bad")
    assert lint_source(source, RULE_PATHS[code], get_rules(select=[code])) == []


def test_rp002_seam_modules_are_exempt():
    for source in (
        fixture_source("RP002", "bad"),
        fixture_source("RP002_serving", "bad"),
    ):
        for seam in (
            "repro/runtime/phases.py",
            "repro/runtime/build.py",
            "repro/serving/clock.py",
        ):
            assert lint_source(source, seam, get_rules(select=["RP002"])) == []


def test_rp002_patrols_serving_outside_its_clock_seam():
    """Serving modules other than clock.py stay under the RP002 audit."""
    bad = fixture_source("RP002_serving", "bad")
    expected = expected_lines(bad, "RP002")
    assert expected, "serving bad fixture has no expect markers"
    findings = lint_source(
        bad, "repro/serving/fixture.py", get_rules(select=["RP002"])
    )
    assert [f.line for f in findings] == expected
    good = fixture_source("RP002_serving", "good")
    assert (
        lint_source(good, "repro/serving/fixture.py", get_rules(select=["RP002"]))
        == []
    )


def test_rp005_only_fires_in_kernel_packages():
    source = fixture_source("RP005", "bad")
    outside = lint_source(
        source, "repro/boosting/fixture.py", get_rules(select=["RP005"])
    )
    assert outside == []


def test_rp006_def_checks_scoped_to_ps_call_checks_global():
    source = fixture_source("RP006", "bad")
    findings = lint_source(
        source, "repro/worker/fixture.py", get_rules(select=["RP006"])
    )
    # Outside ps/ the handler/pusher *definitions* are someone else's
    # contract, but a call that drops seq= is flagged everywhere.
    call_lines = [
        lineno
        for lineno, text in enumerate(source.splitlines(), start=1)
        if "self.server.handle_push" in text
    ]
    assert [f.line for f in findings] == call_lines


def test_rp001_resolves_import_aliases():
    flagged = lint_source(
        "import numpy.random as npr\nnpr.rand()\n",
        "repro/x.py",
        get_rules(select=["RP001"]),
    )
    assert [f.line for f in flagged] == [2]
    renamed = lint_source(
        "from numpy import random as rnd\nrnd.shuffle(x)\n",
        "repro/x.py",
        get_rules(select=["RP001"]),
    )
    assert [f.line for f in renamed] == [2]


def test_rules_ignore_lookalike_local_names():
    # `np` is a local object, not the numpy import: no finding.
    source = "np = make_fake()\nnp.random.rand()\n"
    assert lint_source(source, "repro/x.py", get_rules(select=["RP001"])) == []
    # Same for a local called `time`.
    source = "time = clock_stub()\ntime.time()\n"
    assert lint_source(source, "repro/x.py", get_rules(select=["RP002"])) == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------


def test_inline_suppression_absorbs_only_its_line():
    source = (
        "import time\n"
        "a = time.time()  # reprolint: disable=RP002 -- audited boot stamp\n"
        "b = time.time()\n"
    )
    findings = lint_source(source, "repro/x.py", get_rules(select=["RP002"]))
    assert [(f.line, f.suppressed) for f in findings] == [(2, True), (3, False)]


def test_filewide_suppression_absorbs_whole_module():
    source = (
        "# reprolint: disable-file=RP002 -- legacy module, tracked in #12\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.time()\n"
    )
    findings = lint_source(source, "repro/x.py", get_rules(select=["RP002"]))
    assert len(findings) == 2
    assert all(f.suppressed for f in findings)


def test_suppression_is_per_code():
    source = (
        "import time\n"
        "a = time.time()  # reprolint: disable=RP001 -- wrong code\n"
    )
    findings = lint_source(source, "repro/x.py", get_rules(select=["RP002"]))
    assert [f.suppressed for f in findings] == [False]


def test_disable_all_suppresses_any_code():
    source = "import time\na = time.time()  # reprolint: disable=all\n"
    findings = lint_source(source, "repro/x.py", get_rules(select=["RP002"]))
    assert [f.suppressed for f in findings] == [True]


@pytest.mark.parametrize("code", sorted(GRAPH_CODES))
def test_graph_rule_inline_suppression_round_trip(code):
    source = fixture_source(code, "bad")
    waived = "\n".join(
        line + f"  # reprolint: disable={code} -- round-trip test"
        if f"expect: {code}" in line
        else line
        for line in source.splitlines()
    )
    result = lint_sources(
        {RULE_PATHS[code]: waived}, rules=get_rules(select=[code])
    )
    assert result.ok
    assert result.unsuppressed == []
    assert len(result.suppressed) == len(expected_lines(source, code))


@pytest.mark.parametrize("code", sorted(GRAPH_CODES))
def test_graph_rule_filewide_suppression_round_trip(code):
    source = (
        f"# reprolint: disable-file={code} -- round-trip test\n"
        + fixture_source(code, "bad")
    )
    result = lint_sources(
        {RULE_PATHS[code]: source}, rules=get_rules(select=[code])
    )
    assert result.ok
    assert result.unsuppressed == []
    assert len(result.suppressed) == len(expected_lines(source, code))


def test_suppressed_findings_still_recorded(tmp_path):
    bad = tmp_path / "repro" / "distributed" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import time\n"
        "a = time.time()  # reprolint: disable=RP002 -- waived\n",
        encoding="utf-8",
    )
    result = lint_paths([bad], root=tmp_path, rules=get_rules(select=["RP002"]))
    assert result.ok
    assert len(result.suppressed) == 1
    assert result.suppressed[0].path == "repro/distributed/mod.py"


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------


def _dirty_result(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(
        "import time\n"
        "a = time.time()\n"
        "b = time.time()  # reprolint: disable=RP002 -- waived\n",
        encoding="utf-8",
    )
    return lint_paths([bad], root=tmp_path, rules=get_rules(select=["RP002"]))


def test_json_document_schema(tmp_path):
    doc = to_json(_dirty_result(tmp_path))
    assert set(doc) == {
        "version",
        "tool",
        "ok",
        "files_checked",
        "summary",
        "suppressed_count",
        "findings",
    }
    assert doc["version"] == JSON_SCHEMA_VERSION
    assert doc["tool"] == "reprolint"
    assert doc["ok"] is False
    assert doc["files_checked"] == 1
    assert doc["summary"] == {"RP002": 1}
    assert doc["suppressed_count"] == 1
    assert len(doc["findings"]) == 2
    for entry in doc["findings"]:
        assert set(entry) == {
            "rule",
            "name",
            "message",
            "path",
            "line",
            "col",
            "suppressed",
        }


def test_render_json_is_deterministic(tmp_path):
    result = _dirty_result(tmp_path)
    first, second = render_json(result), render_json(result)
    assert first == second
    assert json.loads(first)["version"] == JSON_SCHEMA_VERSION


def test_reports_are_byte_identical_across_walk_order(tmp_path):
    """Satellite 1: findings are engine-sorted, so the reporters emit
    byte-identical text/JSON no matter how paths were fed in."""
    files = []
    for name in ("b_mod.py", "a_mod.py", "c_mod.py"):
        mod = tmp_path / name
        mod.write_text("import time\nx = time.time()\n", encoding="utf-8")
        files.append(mod)
    rules = get_rules(select=["RP002"])
    forward = lint_paths(files, root=tmp_path, rules=rules)
    # Reversed order plus the directory itself: duplicates are deduped
    # and the output must not move a byte.
    backward = lint_paths(
        list(reversed(files)) + [tmp_path], root=tmp_path, rules=rules
    )
    assert render_text(forward) == render_text(backward)
    assert render_json(forward) == render_json(backward)
    assert forward.files_checked == backward.files_checked == 3


def test_render_text_summary_lines(tmp_path):
    result = _dirty_result(tmp_path)
    text = render_text(result)
    assert "mod.py:2:5: RP002" in text
    assert "[RP002=1]" in text and "1 suppressed" in text
    assert "(suppressed)" not in text
    shown = render_text(result, show_suppressed=True)
    assert "(suppressed)" in shown


def test_parse_error_reported_as_rp000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    findings = lint_file(bad, root=tmp_path)
    assert [f.rule for f in findings] == ["RP000"]
    assert findings[0].name == "parse-error"
    assert not findings[0].suppressed


# ----------------------------------------------------------------------
# the repo's own tree
# ----------------------------------------------------------------------


def test_src_tree_is_clean():
    result = lint_paths([SRC_ROOT], root=SRC_ROOT)
    assert result.ok, render_text(result)
    assert result.files_checked > 50


def test_src_tree_waiver_budget():
    """The audited suppressions are exactly the ones the docs justify."""
    result = lint_paths([SRC_ROOT], root=SRC_ROOT)
    waivers = {(f.rule, f.path) for f in result.suppressed}
    assert waivers == {
        ("RP001", "repro/histogram/shared.py"),
        ("RP001", "repro/inference/parallel.py"),
        ("RP002", "repro/utils/timing.py"),
        ("RP004", "repro/histogram/shared.py"),
        ("RP004", "repro/inference/parallel.py"),
    }
    assert len(result.suppressed) == 7
    # The serving package's clock seam is config-derived, not waived; it
    # must not need a single inline waiver.
    assert not any(f.path.startswith("repro/serving/") for f in result.suppressed)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    good = tmp_path / "mod.py"
    good.write_text("x = 1\n", encoding="utf-8")
    assert main([str(good)]) == 0
    assert "reprolint: clean" in capsys.readouterr().out


def test_cli_exit_one_on_findings(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text("import time\na = time.time()\n", encoding="utf-8")
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RP002" in out


def test_cli_exit_two_on_unknown_code(tmp_path, capsys):
    good = tmp_path / "mod.py"
    good.write_text("x = 1\n", encoding="utf-8")
    assert main([str(good), "--select", "RP999"]) == 2
    assert "RP999" in capsys.readouterr().err


def test_cli_exit_two_on_missing_path(capsys):
    assert main(["definitely/not/a/path"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_select_and_ignore(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text("import time\na = time.time()\n", encoding="utf-8")
    assert main([str(bad), "--select", "RP001"]) == 0
    assert main([str(bad), "--ignore", "RP002"]) == 0
    assert main([str(bad), "--select", "RP002"]) == 1


def test_cli_json_output_file(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text("import time\na = time.time()\n", encoding="utf-8")
    report = tmp_path / "report.json"
    assert main([str(bad), "--format", "json", "--output", str(report)]) == 1
    capsys.readouterr()  # nothing useful on stdout when --output is set
    doc = json.loads(report.read_text(encoding="utf-8"))
    assert doc["version"] == JSON_SCHEMA_VERSION
    assert doc["ok"] is False


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ALL_CODES:
        assert code in out


def test_cli_lints_src_clean(capsys):
    assert main([str(SRC_ROOT)]) == 0
    assert "reprolint: clean" in capsys.readouterr().out


# ----------------------------------------------------------------------
# baseline / diff mode
# ----------------------------------------------------------------------


def test_cli_write_baseline_records_findings_and_exits_zero(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text("import time\na = time.time()\n", encoding="utf-8")
    base = tmp_path / "baseline.json"
    assert main([str(bad), "--write-baseline", str(base)]) == 0
    assert "baseline written" in capsys.readouterr().out
    doc = json.loads(base.read_text(encoding="utf-8"))
    assert doc["version"] == 1
    assert doc["tool"] == "reprolint"
    assert [(e["rule"], e["count"]) for e in doc["entries"]] == [("RP002", 1)]


def test_cli_baseline_passes_on_pre_existing_findings(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text("import time\na = time.time()\n", encoding="utf-8")
    base = tmp_path / "baseline.json"
    assert main([str(bad), "--write-baseline", str(base)]) == 0
    capsys.readouterr()
    assert main([str(bad), "--baseline", str(base)]) == 0
    assert "no new findings vs baseline" in capsys.readouterr().out


def test_cli_baseline_survives_line_moves(tmp_path, capsys):
    """Fingerprints carry no line numbers: shifting a waived finding
    down the file must not resurrect it."""
    bad = tmp_path / "mod.py"
    bad.write_text("import time\na = time.time()\n", encoding="utf-8")
    base = tmp_path / "baseline.json"
    assert main([str(bad), "--write-baseline", str(base)]) == 0
    bad.write_text(
        "import time\n\n\n# a comment\na = time.time()\n", encoding="utf-8"
    )
    capsys.readouterr()
    assert main([str(bad), "--baseline", str(base)]) == 0


def test_cli_baseline_fails_only_on_new_findings(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text("import time\na = time.time()\n", encoding="utf-8")
    base = tmp_path / "baseline.json"
    assert main([str(bad), "--write-baseline", str(base)]) == 0
    bad.write_text(
        "import time\na = time.time()\nb = time.time()\n", encoding="utf-8"
    )
    capsys.readouterr()
    assert main([str(bad), "--baseline", str(base)]) == 1
    assert "1 NEW finding(s) vs baseline" in capsys.readouterr().out


def test_cli_baseline_bad_file_exits_two(tmp_path, capsys):
    good = tmp_path / "mod.py"
    good.write_text("x = 1\n", encoding="utf-8")
    base = tmp_path / "baseline.json"
    base.write_text('{"version": 99}\n', encoding="utf-8")
    assert main([str(good), "--baseline", str(base)]) == 2
    assert "bad baseline" in capsys.readouterr().err


def test_committed_baseline_is_empty_and_src_has_no_new_findings(capsys):
    """The repo gate: the committed baseline carries zero entries (the
    tree is clean) and src produces nothing new against it."""
    committed = SRC_ROOT.parent / ".reprolint-baseline.json"
    doc = json.loads(committed.read_text(encoding="utf-8"))
    assert doc["entries"] == []
    assert main([str(SRC_ROOT), "--baseline", str(committed)]) == 0
    assert "no new findings vs baseline" in capsys.readouterr().out
