"""One parameter-server shard (Section 4.2, "Server").

A :class:`PSServer` stores, for each registered parameter, the element
ranges the partitioner assigned to it.  Rows (e.g. one gradient histogram
per tree node, Section 4.3 "Parameter Layout") are allocated lazily on
first push and freed explicitly — the GradHist parameter would otherwise
occupy ``(2**d - 1) * 2KM`` floats even for nodes never built.

Push semantics: the default push "adds updates to the parameter"
(Section 4.3) — exactly the histogram merge.  Pull semantics: plain pull
returns the stored range; *UDF pulls* run a caller-supplied function over
the stored range server-side and return only its (small) result — the
mechanism behind two-phase split finding (Section 6.3).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..errors import PSError
from .partitioner import Partition

#: A server-side pull function: (stored_values, partition) -> small result.
PullUDF = Callable[[np.ndarray, Partition], Any]


class PSServer:
    """A single server shard.

    Attributes:
        server_id: This shard's id within the group.
    """

    def __init__(self, server_id: int) -> None:
        self.server_id = server_id
        # name -> list of partitions this server hosts
        self._hosted: dict[str, list[Partition]] = {}
        # name -> row -> partition_id -> values
        self._rows: dict[str, dict[int, dict[int, np.ndarray]]] = {}
        # name -> row -> partition_id -> applied sequence tokens; freed
        # together with the rows they guard.
        self._applied: dict[str, dict[int, dict[int, set]]] = {}
        self.bytes_received = 0
        self.bytes_sent = 0
        self.duplicate_pushes = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register(self, name: str, hosted: list[Partition]) -> None:
        """Declare a parameter and the ranges this server hosts for it."""
        if name in self._hosted:
            raise PSError(f"parameter {name!r} already registered on server "
                          f"{self.server_id}")
        self._hosted[name] = list(hosted)
        self._rows[name] = {}
        self._applied[name] = {}

    def _partition(self, name: str, partition_id: int) -> Partition:
        try:
            hosted = self._hosted[name]
        except KeyError as exc:
            raise PSError(
                f"parameter {name!r} not registered on server {self.server_id}"
            ) from exc
        for part in hosted:
            if part.partition_id == partition_id:
                return part
        raise PSError(
            f"partition {partition_id} of {name!r} is not hosted on server "
            f"{self.server_id}"
        )

    # ------------------------------------------------------------------
    # push / pull
    # ------------------------------------------------------------------

    def handle_push(
        self,
        name: str,
        row: int,
        partition_id: int,
        values: np.ndarray,
        seq: object | None = None,
    ) -> None:
        """Apply the default additive push to one hosted range of ``row``.

        ``seq`` makes the push idempotent: a hashable token identifying
        the logical message (the engine uses ``(tree_index, worker_id)``
        — one push per worker per round per row range).  A second push
        carrying an already-applied token is counted, billed for its
        wire bytes, and otherwise ignored, so delivery retries and
        injected duplicates never double-count a histogram.  Tokens are
        freed with the rows they guard (``clear_row`` /
        ``clear_parameter``), which is what scopes them "per round".
        """
        part = self._partition(name, partition_id)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (part.length,):
            raise PSError(
                f"push to {name!r} partition {partition_id}: expected "
                f"{part.length} values, got {values.shape}"
            )
        self.bytes_received += values.size * 4
        if seq is not None:
            applied = self._applied[name].setdefault(row, {}).setdefault(
                partition_id, set()
            )
            if seq in applied:
                self.duplicate_pushes += 1
                return
            applied.add(seq)
        rows = self._rows[name].setdefault(row, {})
        stored = rows.get(partition_id)
        if stored is None:
            rows[partition_id] = values.copy()
        else:
            stored += values

    def handle_pull(self, name: str, row: int, partition_id: int) -> np.ndarray:
        """Return the stored values of one hosted range of ``row``."""
        part = self._partition(name, partition_id)
        stored = self._rows[name].get(row, {}).get(partition_id)
        if stored is None:
            stored = np.zeros(part.length, dtype=np.float64)
        self.bytes_sent += stored.size * 4
        return stored.copy()

    def handle_pull_udf(
        self, name: str, row: int, partition_id: int, udf: PullUDF
    ) -> Any:
        """Run ``udf`` over a hosted range server-side; return its result.

        This is the customizable *pull* function of Section 6.3: "we move
        the split finding operation ... to the pull function".  Only the
        UDF's result crosses the wire, not the stored range.
        """
        part = self._partition(name, partition_id)
        stored = self._rows[name].get(row, {}).get(partition_id)
        if stored is None:
            stored = np.zeros(part.length, dtype=np.float64)
        return udf(stored, part)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def clear_row(self, name: str, row: int) -> None:
        """Free the storage of one row (e.g. a finished tree node)."""
        if name not in self._rows:
            raise PSError(
                f"parameter {name!r} not registered on server {self.server_id}"
            )
        self._rows[name].pop(row, None)
        self._applied[name].pop(row, None)

    def clear_parameter(self, name: str) -> None:
        """Free all rows of a parameter (e.g. between trees)."""
        if name not in self._rows:
            raise PSError(
                f"parameter {name!r} not registered on server {self.server_id}"
            )
        self._rows[name] = {}
        self._applied[name] = {}

    def stored_rows(self, name: str) -> list[int]:
        """Row ids currently materialized for ``name`` (sorted)."""
        if name not in self._rows:
            raise PSError(
                f"parameter {name!r} not registered on server {self.server_id}"
            )
        return sorted(self._rows[name])

    def memory_bytes(self) -> int:
        """Approximate bytes of parameter data held by this shard."""
        total = 0
        for rows in self._rows.values():
            for parts in rows.values():
                for values in parts.values():
                    total += values.nbytes
        return total
