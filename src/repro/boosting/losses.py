"""Loss functions with first- and second-order gradients.

Section 2.2 trains with a second-order approximation (LogitBoost style):
``g_i`` and ``h_i`` are the first and second derivatives of the loss with
respect to the current prediction.  The two losses the paper names are
implemented: logistic (``log(1 + exp(-y * yhat))``) for classification
and squared error for regression.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


def _sigmoid(raw: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(raw, dtype=np.float64)
    positive = raw >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-raw[positive]))
    exp_raw = np.exp(raw[~positive])
    out[~positive] = exp_raw / (1.0 + exp_raw)
    return out


def _weighted_mean(values: np.ndarray, weight: np.ndarray | None) -> float:
    if weight is None:
        return float(np.mean(values))
    total = float(np.sum(weight))
    if total <= 0:
        return 0.0
    return float(np.sum(values * weight) / total)


class LogisticLoss:
    """Binary logistic loss over labels in {0, 1} and raw scores.

    ``p = sigmoid(raw)``; ``g = p - y``; ``h = p * (1 - p)``; optional
    per-instance weights scale both derivatives and the loss.
    """

    name = "logistic"

    def base_score(self, y: np.ndarray, weight: np.ndarray | None = None) -> float:
        """Prior log-odds — the constant prediction minimizing the loss."""
        mean = float(np.clip(_weighted_mean(np.asarray(y, dtype=np.float64), weight), 1e-6, 1.0 - 1e-6))
        return float(np.log(mean / (1.0 - mean)))

    def gradients(
        self, y: np.ndarray, raw: np.ndarray, weight: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(g, h) arrays for current raw predictions."""
        p = _sigmoid(np.asarray(raw, dtype=np.float64))
        g = p - np.asarray(y, dtype=np.float64)
        h = p * (1.0 - p)
        if weight is not None:
            g = g * weight
            h = h * weight
        return g, h

    def loss(
        self, y: np.ndarray, raw: np.ndarray, weight: np.ndarray | None = None
    ) -> float:
        """(Weighted) mean negative log-likelihood."""
        raw = np.asarray(raw, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        # log(1 + exp(-m)) with m = (2y - 1) * raw, computed stably.
        margin = (2.0 * y - 1.0) * raw
        return _weighted_mean(np.logaddexp(0.0, -margin), weight)

    def transform(self, raw: np.ndarray) -> np.ndarray:
        """Raw scores to probabilities."""
        return _sigmoid(np.asarray(raw, dtype=np.float64))


class SquaredLoss:
    """Squared error ``(y - raw)**2`` for regression.

    ``g = raw - y``; ``h = 1`` (the loss is quadratic already).
    """

    name = "squared"

    def base_score(self, y: np.ndarray, weight: np.ndarray | None = None) -> float:
        """The label mean — the constant minimizing squared error."""
        return _weighted_mean(np.asarray(y, dtype=np.float64), weight)

    def gradients(
        self, y: np.ndarray, raw: np.ndarray, weight: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(g, h) arrays for current raw predictions."""
        g = np.asarray(raw, dtype=np.float64) - np.asarray(y, dtype=np.float64)
        h = np.ones_like(g)
        if weight is not None:
            g = g * weight
            h = h * weight
        return g, h

    def loss(
        self, y: np.ndarray, raw: np.ndarray, weight: np.ndarray | None = None
    ) -> float:
        """(Weighted) mean squared error."""
        diff = np.asarray(y, dtype=np.float64) - np.asarray(raw, dtype=np.float64)
        return _weighted_mean(diff * diff, weight)

    def transform(self, raw: np.ndarray) -> np.ndarray:
        """Identity — regression predicts the raw score."""
        return np.asarray(raw, dtype=np.float64)


_LOSSES = {LogisticLoss.name: LogisticLoss, SquaredLoss.name: SquaredLoss}


def get_loss(name: str) -> LogisticLoss | SquaredLoss:
    """Instantiate a loss by its config name."""
    try:
        return _LOSSES[name]()
    except KeyError as exc:
        raise ConfigError(
            f"unknown loss {name!r}; expected one of {sorted(_LOSSES)}"
        ) from exc
