"""Extension — real multicore histogram construction.

Section 5.2's batch parallelism is simulated elsewhere in this repo (the
span account charges what a multi-threaded Java worker would observe).
This bench measures the *real* thing: the shared-memory process pool
behind :class:`~repro.runtime.build.ProcessParallelBuildStrategy`
building one node histogram on 1, 2, and 4 worker processes, on an
RCV1-like shard.

Two claims are checked:

* the pooled histogram is bit-identical to the sequential kernel's
  (gradients are dyadic rationals, so float sums are exact in any merge
  order — ``np.array_equal``, not allclose), and
* on a machine with >= 4 usable cores, 4 processes reach at least a
  1.5x wall-clock speedup over the sequential build.  On smaller
  machines (CI smoke runs, single-core containers) the speedup row is
  still recorded but not asserted — there is nothing to win on one core.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.datasets import rcv1_like
from repro.histogram.binned import BinnedShard
from repro.histogram.builder import build_node_histogram_sparse
from repro.runtime.build import ProcessParallelBuildStrategy
from repro.sketch import propose_candidates

from conftest import bench_scale


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_real_process_pool_speedup(benchmark, report):
    """Sequential vs process-pool wall-clock for one full-shard build."""
    scale = bench_scale()
    data = rcv1_like(scale=0.3 * scale, seed=0)
    candidates = propose_candidates(data.X, 20)
    shard = BinnedShard(data.X, candidates)
    rng = np.random.default_rng(0)
    # Dyadic gradients: exact float sums in any order -> bit-identity
    # across chunkings is a hard assertion, not a tolerance.
    grad = rng.integers(-512, 512, size=shard.n_rows).astype(np.float64) / 1024.0
    hess = rng.integers(1, 512, size=shard.n_rows).astype(np.float64) / 1024.0
    rows = np.arange(shard.n_rows, dtype=np.int64)
    batch_size = max(1, shard.n_rows // 8)
    repeats = 5

    reference = build_node_histogram_sparse(shard, rows, grad, hess)

    def timed_sequential() -> float:
        best = np.inf
        for _ in range(repeats):
            t0 = time.perf_counter()
            build_node_histogram_sparse(shard, rows, grad, hess)
            best = min(best, time.perf_counter() - t0)
        return best

    def timed_pooled(n_processes: int) -> tuple[float, bool]:
        strategy = ProcessParallelBuildStrategy(
            batch_size=batch_size, n_processes=n_processes
        )
        try:
            # Warmup: fork the pool, create + attach the segments.
            strategy.build(shard, rows, grad, hess)
            best = np.inf
            identical = True
            for _ in range(repeats):
                t0 = time.perf_counter()
                histogram, _ = strategy.build(shard, rows, grad, hess)
                best = min(best, time.perf_counter() - t0)
                identical = identical and np.array_equal(
                    reference.grad, histogram.grad
                ) and np.array_equal(reference.hess, histogram.hess)
            return best, identical
        finally:
            strategy.close()

    def run():
        sequential = timed_sequential()
        rows_out = [["sequential", 1, sequential, 1.0, True]]
        for n_processes in (2, 4):
            pooled, identical = timed_pooled(n_processes)
            rows_out.append(
                ["process", n_processes, pooled, sequential / pooled, identical]
            )
        return rows_out

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    cores = usable_cores()
    report.add_table(
        "Extension: real multicore histogram construction",
        ["backend", "processes", "best wall s", "speedup", "bit-identical"],
        table,
        notes=(
            f"RCV1-like shard, {shard.n_rows} rows x {shard.n_features} "
            f"features, batch {batch_size}; {cores} usable cores; best of "
            f"{repeats}; dyadic gradients"
        ),
    )
    # Bit-identity holds on any machine.
    assert all(row[4] for row in table)
    # The speedup claim needs the cores to exist.
    speedup_at_4 = table[2][3]
    if cores >= 4:
        assert speedup_at_4 >= 1.5, (
            f"expected >= 1.5x at 4 processes on {cores} cores, "
            f"got {speedup_at_4:.2f}x"
        )
