"""Process-parallel flat-ensemble scoring over shared memory.

The numpy kernels in :mod:`repro.inference.flat` hold the GIL, so real
multicore prediction needs worker *processes* — the same conclusion
PR 2 reached for histogram builds, and the same machinery: the compiled
ensemble's struct-of-arrays, the input matrix's CSR arrays, and one
float64 output vector are placed in :mod:`multiprocessing.shared_memory`
segments (the ``repro_shm_*`` prefix the leak tests scan for).  Worker
processes attach the segments once (cached by token), score a disjoint
row span directly into the shared output, and pickle back only the
measured seconds.

Rows are scored independently, so any span chunking produces bit-
identical output to the serial path — asserted by the tests and
``benchmarks/bench_ext_inference.py``.

Like :class:`~repro.runtime.build.ProcessParallelBuildStrategy`, the
scorer degrades gracefully to the serial path: per call when the input
is too small to be worth the fan-out, and permanently (with a warning)
when pools are unusable — no ``fork`` start method, shared memory
unavailable, or a broken pool.
"""

from __future__ import annotations

import multiprocessing
import uuid
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..datasets.sparse import CSRMatrix
from ..errors import DataError
from ..histogram.shared import SHM_PREFIX, _attach
from ..utils.timing import wall_clock
from .flat import FlatEnsemble

__all__ = ["ParallelScorer", "SharedScoreContext", "score_span"]

#: Arrays of the compiled ensemble mirrored into shared memory — the
#: exact set the scoring kernel touches (``leaf_origin`` and raw feature
#: ids stay behind; workers only score).
_ENSEMBLE_FIELDS = (
    "slot_col",
    "split_value",
    "weight",
    "tree_offset",
    "col_of_feature",
)

#: CSR arrays of the input matrix mirrored into shared memory.
_MATRIX_FIELDS = ("indptr", "indices", "data")


class SharedScoreContext:
    """One (ensemble, matrix) pair plus the output vector in shared memory.

    The creating process owns the segments — :meth:`close` unlinks them
    (idempotent, also run by ``__del__``); workers attach without
    resource-tracker ownership via the same :func:`_attach` the
    histogram pool uses, so a worker exiting never unlinks a segment the
    parent still needs.
    """

    def __init__(self, ensemble: FlatEnsemble, X: CSRMatrix) -> None:
        self.token = SHM_PREFIX + uuid.uuid4().hex[:16]  # reprolint: disable=RP001 -- segment *names* must be unique per process, never replayed; no numeric state derives from them
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False
        self.manifest: dict = {
            "token": self.token,
            "n_rows": X.n_rows,
            "n_cols": X.n_cols,
            "n_trees": ensemble.n_trees,
            "n_features": ensemble.n_features,
            "max_depth": ensemble.max_depth,
            "n_used": ensemble.n_used,
            "arrays": {},
        }
        try:
            for name in _ENSEMBLE_FIELDS:
                self._add(f"ens_{name}", getattr(ensemble, name))
            for name in _MATRIX_FIELDS:
                self._add(f"mat_{name}", getattr(X, name))
            self._add("out", np.zeros(max(1, X.n_rows), dtype=np.float64))
        except BaseException:
            self.close()
            raise
        self.out = self._out_array

    def _add(self, name: str, source: np.ndarray) -> None:
        source = np.ascontiguousarray(source)
        segment_name = f"{self.token}_{name}"
        shm = shared_memory.SharedMemory(
            name=segment_name, create=True, size=max(1, source.nbytes)
        )
        self._segments.append(shm)
        array = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
        np.copyto(array, source)
        if name == "out":
            self._out_array = array
        self.manifest["arrays"][name] = (
            segment_name,
            source.shape,
            source.dtype.str,
        )

    @property
    def nbytes(self) -> int:
        """Total bytes held in shared memory."""
        return sum(seg.size for seg in self._segments)

    def close(self) -> None:
        """Release every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.out = self._out_array = None
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------


@dataclass
class _WorkerView:
    """A worker process's attached view of one :class:`SharedScoreContext`."""

    ensemble: FlatEnsemble
    X: CSRMatrix
    out: np.ndarray
    segments: list = field(default_factory=list)


#: Per-process cache of attached views, keyed by context token.  Entries
#: live until the worker exits; a held-open segment keeps its memory
#: alive even after the parent unlinks it, so a stale entry is memory
#: held, never a crash.
# Fork-safe by design: only worker tasks populate it, so it is empty in
# the parent at fork time and each child grows its own private copy.
_WORKER_VIEWS: dict[str, _WorkerView] = {}  # reprolint: disable=RP004


def _worker_view(manifest: dict) -> _WorkerView:
    """Attach (once per process) the segments described by ``manifest``."""
    view = _WORKER_VIEWS.get(manifest["token"])
    if view is not None:
        return view
    segments = []
    arrays: dict[str, np.ndarray] = {}
    for name, (segment_name, shape, dtype) in manifest["arrays"].items():
        shm = _attach(segment_name)
        segments.append(shm)
        arrays[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    ensemble = FlatEnsemble.__new__(FlatEnsemble)
    ensemble.n_trees = manifest["n_trees"]
    ensemble.n_features = manifest["n_features"]
    ensemble.max_depth = manifest["max_depth"]
    ensemble.n_used = manifest["n_used"]
    for name in _ENSEMBLE_FIELDS:
        setattr(ensemble, name, arrays[f"ens_{name}"])
    ensemble.used_features = np.flatnonzero(ensemble.col_of_feature >= 0)
    X = CSRMatrix(
        arrays["mat_indptr"],
        arrays["mat_indices"],
        arrays["mat_data"],
        (manifest["n_rows"], manifest["n_cols"]),
    )
    view = _WorkerView(
        ensemble=ensemble, X=X, out=arrays["out"], segments=segments
    )
    _WORKER_VIEWS[manifest["token"]] = view
    return view


def score_span(
    manifest: dict,
    start: int,
    stop: int,
    n_use: int,
    base_score: float,
    batch_rows: int | None,
) -> float:
    """Pool task: score rows ``[start, stop)`` into the shared output.

    Returns the measured seconds (the only payload pickled back).
    """
    view = _worker_view(manifest)
    started = wall_clock()
    view.ensemble.score_into(
        view.X,
        view.out,
        base_score=base_score,
        n_use=n_use,
        batch_rows=batch_rows,
        start=start,
        stop=stop,
    )
    return wall_clock() - started


# ----------------------------------------------------------------------
# driver side
# ----------------------------------------------------------------------


class ParallelScorer:
    """Scores row spans of a compiled ensemble on a persistent fork pool.

    Args:
        ensemble: The compiled :class:`FlatEnsemble`.
        n_processes: Worker processes; the fan-out uses at most
            ``ceil(n_rows / batch_rows)`` of them per call.
        batch_rows: Row-block size workers sub-chunk their span with
            (default: the ensemble's cache-sized block).

    Attributes:
        fallback_reason: Why the pool was permanently disabled, or None.
        last_task_seconds: Measured per-span seconds of the last pooled
            call (empty until one has run).
    """

    def __init__(
        self,
        ensemble: FlatEnsemble,
        n_processes: int,
        batch_rows: int | None = None,
    ) -> None:
        if n_processes < 1:
            raise DataError(f"n_processes must be >= 1, got {n_processes}")
        self.ensemble = ensemble
        self.n_processes = n_processes
        self.batch_rows = batch_rows
        self._executor: ProcessPoolExecutor | None = None
        #: id(X) -> (X, SharedScoreContext).  The strong reference pins
        #: the id so the cache can never alias a freed matrix.
        self._contexts: dict[int, tuple[CSRMatrix, SharedScoreContext]] = {}
        self.fallback_reason: str | None = None
        self.last_task_seconds: tuple[float, ...] = ()

    def predict_raw(
        self,
        X: CSRMatrix,
        base_score: float = 0.0,
        n_trees: int | None = None,
    ) -> np.ndarray:
        """Raw scores, bit-identical to the serial flat path."""
        n_use = self.ensemble._n_use(n_trees)
        batch = self.ensemble._resolve_batch(self.batch_rows, max(1, X.n_rows))
        n_tasks = min(self.n_processes, -(-X.n_rows // batch)) if X.n_rows else 0
        if n_tasks < 2 or not self._ensure_executor():
            return self._sequential(X, base_score, n_use)
        try:
            context = self._context(X)
        except (OSError, ValueError) as exc:
            self._disable(f"shared memory unavailable ({exc})")
            return self._sequential(X, base_score, n_use)
        bounds = [(i * X.n_rows) // n_tasks for i in range(n_tasks + 1)]
        try:
            futures = [
                self._executor.submit(
                    score_span,
                    context.manifest,
                    bounds[i],
                    bounds[i + 1],
                    n_use,
                    base_score,
                    self.batch_rows,
                )
                for i in range(n_tasks)
            ]
            self.last_task_seconds = tuple(f.result() for f in futures)
        except BrokenProcessPool:
            self._disable("process pool broke")
            return self._sequential(X, base_score, n_use)
        # Copy out of the shared segment: the caller's array must outlive
        # close()/unlink.
        return context.out[: X.n_rows].copy()

    def _sequential(
        self, X: CSRMatrix, base_score: float, n_use: int
    ) -> np.ndarray:
        out = np.empty(X.n_rows, dtype=np.float64)
        self.ensemble.score_into(
            X, out, base_score=base_score, n_use=n_use, batch_rows=self.batch_rows
        )
        return out

    # ------------------------------------------------------------------
    # resources
    # ------------------------------------------------------------------

    def _ensure_executor(self) -> bool:
        if self._executor is not None:
            return True
        if self.fallback_reason is not None:
            return False
        if "fork" not in multiprocessing.get_all_start_methods():
            self._disable("fork start method unavailable")
            return False
        try:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_processes,
                mp_context=multiprocessing.get_context("fork"),
            )
        except OSError as exc:  # pragma: no cover - resource exhaustion
            self._disable(f"could not start process pool ({exc})")
            return False
        return True

    def _context(self, X: CSRMatrix) -> SharedScoreContext:
        entry = self._contexts.get(id(X))
        if entry is None:
            entry = (X, SharedScoreContext(self.ensemble, X))
            self._contexts[id(X)] = entry
        return entry[1]

    def release(self, X: CSRMatrix) -> bool:
        """Unpin one matrix: unlink its shared-memory context now.

        The context cache keys by ``id(X)`` and holds a strong reference,
        which is right for the offline pattern (score the same matrix
        many times) but pins one segment set per matrix forever under
        the serving pattern (a fresh matrix per micro-batch).  Callers
        that build throwaway matrices release them after scoring.

        Returns:
            True if a context for ``X`` existed and was released.
        """
        entry = self._contexts.pop(id(X), None)
        if entry is None:
            return False
        entry[1].close()
        return True

    def _disable(self, reason: str) -> None:
        self.fallback_reason = reason
        warnings.warn(
            f"process-parallel scoring disabled: {reason}; "
            "falling back to serial flat scoring",
            RuntimeWarning,
            stacklevel=3,
        )
        self._shutdown()

    def _shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        for _, context in self._contexts.values():
            context.close()
        self._contexts.clear()

    def close(self) -> None:
        """Shut the pool down and unlink every shared-memory segment."""
        self._shutdown()

    def __enter__(self) -> "ParallelScorer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self._shutdown()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ParallelScorer(n_processes={self.n_processes}, "
            f"batch_rows={self.batch_rows}, "
            f"fallback_reason={self.fallback_reason!r})"
        )
