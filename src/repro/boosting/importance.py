"""Feature importance for trained GBDT models.

Two standard attributions over the ensemble's split nodes:

* ``weight`` — how many times each feature was chosen to split (the
  count importance XGBoost popularized).
* ``gain`` — the total objective gain contributed by each feature's
  splits, recomputed from the training data so imported models (whose
  JSON stores no gains) are supported too.
"""

from __future__ import annotations

import numpy as np

from ..datasets.dataset import Dataset
from ..errors import DataError
from ..histogram.binned import BinnedShard
from ..sketch.candidates import propose_candidates
from .losses import get_loss
from .model import GBDTModel


def split_count_importance(model: GBDTModel, normalize: bool = True) -> np.ndarray:
    """Number of splits per feature across all trees.

    Args:
        model: A trained model.
        normalize: Scale so the importances sum to 1 (when any exist).

    Returns:
        float64 array of length ``model.n_features``.
    """
    counts = np.zeros(model.n_features, dtype=np.float64)
    for tree in model.trees:
        used = tree.split_feature[tree.split_feature >= 0]
        np.add.at(counts, used, 1.0)
    total = counts.sum()
    if normalize and total > 0:
        counts /= total
    return counts


def gain_importance(
    model: GBDTModel,
    train: Dataset,
    normalize: bool = True,
) -> np.ndarray:
    """Total split gain per feature, recomputed over ``train``.

    Replays the ensemble on the training data: for every internal node,
    the instances reaching it are partitioned by its recorded split and
    the regularized gain is evaluated from the actual gradient sums at
    that point of boosting.  O(T * depth * N) plus one binning pass.

    Args:
        model: A trained model.
        train: The dataset to attribute gains over (normally the
            training set the model was fit on).
        normalize: Scale so the importances sum to 1 (when any exist).

    Returns:
        float64 array of length ``model.n_features``.
    """
    if train.n_features > model.n_features:
        raise DataError(
            f"dataset has {train.n_features} features, model has "
            f"{model.n_features}"
        )
    loss = get_loss(model.loss_name)
    gains = np.zeros(model.n_features, dtype=np.float64)
    raw = np.full(train.n_instances, model.base_score, dtype=np.float64)
    reg_lambda = 1.0  # matches TrainConfig's default; relative ranking is
    # insensitive to the exact value
    csc = train.X.to_csc()

    for tree in model.trees:
        grad, hess = loss.gradients(train.y, raw)
        # Walk level by level, carrying each node's instance set.
        frontier: list[tuple[int, np.ndarray]] = [
            (0, np.arange(train.n_instances))
        ]
        while frontier:
            next_frontier: list[tuple[int, np.ndarray]] = []
            for node, rows in frontier:
                feature = int(tree.split_feature[node])
                if feature < 0:
                    continue
                values = _column_values_for_rows(csc, train, feature, rows)
                goes_left = values < tree.split_value[node]
                left_rows, right_rows = rows[goes_left], rows[~goes_left]
                gl, hl = grad[left_rows].sum(), hess[left_rows].sum()
                gr, hr = grad[right_rows].sum(), hess[right_rows].sum()
                g, h = gl + gr, hl + hr
                gain = 0.5 * (
                    gl * gl / (hl + reg_lambda)
                    + gr * gr / (hr + reg_lambda)
                    - g * g / (h + reg_lambda)
                )
                gains[feature] += max(0.0, gain)
                next_frontier.append((2 * node + 1, left_rows))
                next_frontier.append((2 * node + 2, right_rows))
            frontier = next_frontier
        raw += tree.predict(train.X)

    total = gains.sum()
    if normalize and total > 0:
        gains /= total
    return gains


def _column_values_for_rows(
    csc: tuple[np.ndarray, np.ndarray, np.ndarray],
    dataset: Dataset,
    feature: int,
    rows: np.ndarray,
) -> np.ndarray:
    """Dense values of one feature for a row subset (absent = 0)."""
    col_indptr, row_indices, values = csc
    dense = np.zeros(dataset.n_instances, dtype=np.float64)
    if feature < dataset.n_features:
        lo, hi = col_indptr[feature], col_indptr[feature + 1]
        dense[row_indices[lo:hi]] = values[lo:hi]
    return dense[rows]


def recorded_gain_importance(
    model: GBDTModel, normalize: bool = True
) -> np.ndarray:
    """Total recorded split gain per feature — no data pass needed.

    Trees trained by this library store each split's objective gain
    (see :class:`repro.tree.RegressionTree`); summing those per feature
    gives the gain importance instantly.  Models imported from JSON that
    lacks the ``gain`` fields fall back to zeros — use
    :func:`gain_importance` (which recomputes from data) for those.
    """
    gains = np.zeros(model.n_features, dtype=np.float64)
    for tree in model.trees:
        internal = tree.split_feature >= 0
        np.add.at(gains, tree.split_feature[internal], tree.gain[internal])
    total = gains.sum()
    if normalize and total > 0:
        gains /= total
    return gains


def top_features(
    importances: np.ndarray, k: int = 10
) -> list[tuple[int, float]]:
    """The ``k`` highest-importance (feature, score) pairs, descending."""
    if k < 1:
        raise DataError(f"k must be >= 1, got {k}")
    order = np.argsort(importances)[::-1][:k]
    return [(int(f), float(importances[f])) for f in order if importances[f] > 0]
