"""Public API surface tests."""

from __future__ import annotations

import pytest

import repro
from repro import ClusterConfig, NetworkCost, TrainConfig
from repro.errors import ConfigError


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_names(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_backend_names(self):
        assert repro.BACKEND_NAMES == (
            "mllib",
            "xgboost",
            "lightgbm",
            "tencentboost",
            "dimboost",
        )


class TestTrainConfig:
    def test_paper_defaults(self):
        """Section 7.1 protocol values are the defaults."""
        config = TrainConfig()
        assert config.n_trees == 20
        assert config.max_depth == 7
        assert config.n_split_candidates == 20
        assert config.learning_rate == 0.01
        assert config.feature_sample_ratio == 1.0
        assert config.compression_bits == 8
        assert config.batch_size == 10_000
        assert config.n_threads == 20

    def test_max_nodes(self):
        assert TrainConfig(max_depth=7).max_nodes == 127

    def test_with_overrides(self):
        config = TrainConfig().with_overrides(n_trees=5)
        assert config.n_trees == 5
        assert TrainConfig().n_trees == 20  # original untouched

    def test_overrides_revalidate(self):
        with pytest.raises(ConfigError):
            TrainConfig().with_overrides(n_trees=0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_trees", 0),
            ("max_depth", 0),
            ("learning_rate", 0.0),
            ("feature_sample_ratio", 1.5),
            ("reg_lambda", -1.0),
            ("loss", "hinge"),
            ("compression_bits", 7),
            ("batch_size", 0),
            ("sketch_eps", 0.6),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ConfigError, match=field):
            TrainConfig(**{field: value})


class TestClusterConfig:
    def test_defaults(self):
        cluster = ClusterConfig()
        assert cluster.n_workers == 4
        assert cluster.n_servers == 4
        assert cluster.colocated

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_workers=0)
        with pytest.raises(ConfigError):
            ClusterConfig(n_servers=0)

    def test_network_cost_validation(self):
        with pytest.raises(ConfigError):
            NetworkCost(alpha=-1.0)

    def test_with_overrides(self):
        cluster = ClusterConfig().with_overrides(n_workers=50)
        assert cluster.n_workers == 50


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        from repro import (
            CommunicationError,
            DataError,
            NotFittedError,
            PSError,
            ReproError,
            SketchError,
            TrainingError,
        )

        for exc in (
            ConfigError,
            DataError,
            SketchError,
            CommunicationError,
            PSError,
            TrainingError,
            NotFittedError,
        ):
            assert issubclass(exc, ReproError)

    def test_not_fitted_is_training_error(self):
        from repro import NotFittedError, TrainingError

        assert issubclass(NotFittedError, TrainingError)
