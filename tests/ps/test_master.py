"""Tests for phase-lockstep coordination."""

from __future__ import annotations

import pytest

from repro.errors import TrainingError
from repro.ps import Master, WorkerHealth, WorkerPhase


def advance_all(master: Master, phase: WorkerPhase) -> None:
    for wid in range(master.n_workers):
        master.enter_phase(wid, phase)


class TestPhases:
    def test_full_legal_lifecycle(self):
        master = Master(3)
        advance_all(master, WorkerPhase.CREATE_SKETCH)
        advance_all(master, WorkerPhase.PULL_SKETCH)
        advance_all(master, WorkerPhase.NEW_TREE)
        for _ in range(2):  # two layers
            advance_all(master, WorkerPhase.BUILD_HISTOGRAM)
            advance_all(master, WorkerPhase.FIND_SPLIT)
            advance_all(master, WorkerPhase.SPLIT_TREE)
            if _ == 0:
                advance_all(master, WorkerPhase.BUILD_HISTOGRAM)
                advance_all(master, WorkerPhase.FIND_SPLIT)
                advance_all(master, WorkerPhase.SPLIT_TREE)
        advance_all(master, WorkerPhase.FINISH)
        assert master.all_finished()

    def test_must_start_in_create_sketch(self):
        master = Master(2)
        with pytest.raises(TrainingError, match="CREATE_SKETCH"):
            master.enter_phase(0, WorkerPhase.NEW_TREE)

    def test_illegal_transition(self):
        master = Master(1)
        master.enter_phase(0, WorkerPhase.CREATE_SKETCH)
        with pytest.raises(TrainingError, match="illegal transition"):
            master.enter_phase(0, WorkerPhase.FIND_SPLIT)

    def test_split_tree_loops_back(self):
        master = Master(1)
        for phase in (
            WorkerPhase.CREATE_SKETCH,
            WorkerPhase.PULL_SKETCH,
            WorkerPhase.NEW_TREE,
            WorkerPhase.BUILD_HISTOGRAM,
            WorkerPhase.FIND_SPLIT,
            WorkerPhase.SPLIT_TREE,
            WorkerPhase.BUILD_HISTOGRAM,  # next layer
        ):
            master.enter_phase(0, phase)
        assert master.phase_of(0) is WorkerPhase.BUILD_HISTOGRAM

    def test_split_tree_to_new_tree(self):
        master = Master(1)
        for phase in (
            WorkerPhase.CREATE_SKETCH,
            WorkerPhase.PULL_SKETCH,
            WorkerPhase.NEW_TREE,
            WorkerPhase.BUILD_HISTOGRAM,
            WorkerPhase.FIND_SPLIT,
            WorkerPhase.SPLIT_TREE,
            WorkerPhase.NEW_TREE,  # next tree
        ):
            master.enter_phase(0, phase)


class TestBarrier:
    def test_barrier_violation_detected(self):
        master = Master(2)
        master.enter_phase(0, WorkerPhase.CREATE_SKETCH)
        master.enter_phase(1, WorkerPhase.CREATE_SKETCH)
        master.enter_phase(0, WorkerPhase.PULL_SKETCH)
        # Worker 0 races two phases ahead while worker 1 lags.
        with pytest.raises(TrainingError, match="barrier violation"):
            master.enter_phase(0, WorkerPhase.NEW_TREE)

    def test_barriers_counted(self):
        master = Master(2)
        advance_all(master, WorkerPhase.CREATE_SKETCH)
        advance_all(master, WorkerPhase.PULL_SKETCH)
        assert master.barriers_passed == 2

    def test_health_beats(self):
        master = Master(2)
        advance_all(master, WorkerPhase.CREATE_SKETCH)
        report = master.health_report()
        assert report == {
            0: WorkerHealth(beats=1),
            1: WorkerHealth(beats=1),
        }
        assert all(h.alive for h in report.values())


def advance_to_round(master: Master) -> None:
    """Bring every worker to the NEW_TREE barrier (round boundary)."""
    advance_all(master, WorkerPhase.CREATE_SKETCH)
    advance_all(master, WorkerPhase.PULL_SKETCH)
    advance_all(master, WorkerPhase.NEW_TREE)


class TestDeparture:
    def test_departed_worker_cannot_enter(self):
        master = Master(3)
        advance_to_round(master)
        master.mark_departed(1)
        with pytest.raises(TrainingError, match="departed"):
            master.enter_phase(1, WorkerPhase.BUILD_HISTOGRAM)

    def test_barrier_shrinks_to_survivors(self):
        master = Master(3)
        advance_to_round(master)
        master.mark_departed(1)
        # Workers 0 and 2 proceed without worker 1 breaking lockstep.
        master.enter_phase(0, WorkerPhase.BUILD_HISTOGRAM)
        master.enter_phase(2, WorkerPhase.BUILD_HISTOGRAM)
        assert master.phase_of(0) is WorkerPhase.BUILD_HISTOGRAM

    def test_enter_all_skips_departed(self):
        master = Master(3)
        advance_to_round(master)
        master.mark_departed(2)
        before = master.barriers_passed
        master.enter_all(WorkerPhase.BUILD_HISTOGRAM)
        assert master.phase_of(2) is WorkerPhase.NEW_TREE  # untouched
        assert master.barriers_passed == before + 1  # live-only barrier

    def test_double_departure_rejected(self):
        master = Master(2)
        advance_to_round(master)
        master.mark_departed(0)
        with pytest.raises(TrainingError, match="already departed"):
            master.mark_departed(0)

    def test_health_report_reflects_crash_and_recovery(self):
        master = Master(2)
        advance_to_round(master)
        master.mark_departed(1)
        report = master.health_report()
        assert not report[1].alive
        assert report[1].crashes == 1
        assert report[0].alive
        master.rollback_round()
        report = master.health_report()
        assert report[1].alive
        assert report[1].recoveries == 1
        assert report[1].crashes == 1


class TestBarrierReentry:
    """Ordering rules of rejoin: a departed worker re-enters the barrier
    only where its live peers currently stand."""

    def test_rejoin_requires_departure(self):
        master = Master(2)
        advance_to_round(master)
        with pytest.raises(TrainingError, match="not departed"):
            master.rejoin(0, WorkerPhase.NEW_TREE)

    def test_rejoin_at_wrong_phase_rejected(self):
        master = Master(3)
        advance_to_round(master)
        master.mark_departed(1)
        master.enter_phase(0, WorkerPhase.BUILD_HISTOGRAM)
        master.enter_phase(2, WorkerPhase.BUILD_HISTOGRAM)
        # Peers stand at BUILD_HISTOGRAM; rejoining at NEW_TREE would put
        # the worker a phase behind the barrier.
        with pytest.raises(TrainingError, match="cannot rejoin"):
            master.rejoin(1, WorkerPhase.NEW_TREE)

    def test_rejoin_at_peer_phase_restores_lockstep(self):
        master = Master(3)
        advance_to_round(master)
        master.mark_departed(1)
        master.enter_phase(0, WorkerPhase.BUILD_HISTOGRAM)
        master.enter_phase(2, WorkerPhase.BUILD_HISTOGRAM)
        master.rejoin(1, WorkerPhase.BUILD_HISTOGRAM)
        assert master.departed == frozenset()
        # Full-membership lockstep resumes: all three enter FIND_SPLIT.
        master.enter_all(WorkerPhase.FIND_SPLIT)
        assert all(
            master.phase_of(wid) is WorkerPhase.FIND_SPLIT for wid in range(3)
        )

    def test_rollback_round_rejoins_everyone_at_new_tree(self):
        master = Master(3)
        advance_to_round(master)
        master.enter_all(WorkerPhase.BUILD_HISTOGRAM)
        master.mark_departed(2)
        master.rollback_round()
        assert master.departed == frozenset()
        assert all(
            master.phase_of(wid) is WorkerPhase.NEW_TREE for wid in range(3)
        )
        # The replayed round proceeds through the normal transitions.
        master.enter_all(WorkerPhase.BUILD_HISTOGRAM)
        master.enter_all(WorkerPhase.FIND_SPLIT)


class TestValidation:
    def test_worker_id_range(self):
        master = Master(2)
        with pytest.raises(TrainingError):
            master.enter_phase(5, WorkerPhase.CREATE_SKETCH)

    def test_zero_workers(self):
        with pytest.raises(TrainingError):
            Master(0)

    def test_leader(self):
        assert Master(3).leader_id == 0


class TestStalenessClocks:
    """Bounded-staleness mode: layer clocks replace the phase barrier."""

    def test_rejects_negative_staleness(self):
        with pytest.raises(TrainingError, match="staleness"):
            Master(2, staleness=-1)

    def test_clock_counts_layers_started(self):
        master = Master(2, staleness=1)
        advance_to_round(master)
        assert master.worker_clock(0) == 0
        advance_all(master, WorkerPhase.BUILD_HISTOGRAM)
        assert master.worker_clock(0) == 1
        assert master.worker_clock(1) == 1
        assert master.clock_drift() == 0

    def test_drift_within_bound_is_legal(self):
        """With S=1, a worker may run one full layer ahead of its peers
        — the strict phase barrier would have raised immediately."""
        master = Master(2, staleness=1)
        advance_to_round(master)
        master.enter_phase(0, WorkerPhase.BUILD_HISTOGRAM)
        master.enter_phase(0, WorkerPhase.FIND_SPLIT)
        master.enter_phase(0, WorkerPhase.SPLIT_TREE)
        assert master.clock_drift() == 1

    def test_drift_beyond_bound_raises(self):
        master = Master(2, staleness=1)
        advance_to_round(master)
        master.enter_phase(0, WorkerPhase.BUILD_HISTOGRAM)
        master.enter_phase(0, WorkerPhase.FIND_SPLIT)
        master.enter_phase(0, WorkerPhase.SPLIT_TREE)
        with pytest.raises(TrainingError, match="staleness bound exceeded"):
            master.enter_phase(0, WorkerPhase.BUILD_HISTOGRAM)

    def test_peer_progress_unblocks_the_leader(self):
        master = Master(2, staleness=1)
        advance_to_round(master)
        master.enter_phase(0, WorkerPhase.BUILD_HISTOGRAM)
        master.enter_phase(0, WorkerPhase.FIND_SPLIT)
        master.enter_phase(0, WorkerPhase.SPLIT_TREE)
        master.enter_phase(1, WorkerPhase.BUILD_HISTOGRAM)
        master.enter_phase(0, WorkerPhase.BUILD_HISTOGRAM)  # now legal
        assert master.worker_clock(0) == 2
        assert master.clock_drift() == 1

    def test_departed_workers_leave_the_bound(self):
        """A crashed laggard must not freeze the cluster: the bound is
        computed over live peers only."""
        master = Master(3, staleness=1)
        advance_to_round(master)
        master.enter_phase(0, WorkerPhase.BUILD_HISTOGRAM)
        master.enter_phase(1, WorkerPhase.BUILD_HISTOGRAM)
        master.mark_departed(2)
        master.enter_phase(0, WorkerPhase.FIND_SPLIT)
        master.enter_phase(0, WorkerPhase.SPLIT_TREE)
        master.enter_phase(0, WorkerPhase.BUILD_HISTOGRAM)
        assert master.worker_clock(0) == 2
        assert master.clock_drift() == 1  # over workers 0 and 1 only

    def test_rollback_resynchronizes_clocks(self):
        master = Master(2, staleness=1)
        advance_to_round(master)
        master.enter_phase(0, WorkerPhase.BUILD_HISTOGRAM)
        master.mark_departed(1)
        master.rollback_round()
        assert master.worker_clock(0) == master.worker_clock(1) == 1
        assert master.clock_drift() == 0

    def test_synchronous_mode_still_tracks_clocks(self):
        """S=0 keeps the strict barrier *and* the clocks, so drift is
        observable (always 0 at barriers) without behavior change."""
        master = Master(2)
        advance_to_round(master)
        advance_all(master, WorkerPhase.BUILD_HISTOGRAM)
        assert master.worker_clock(0) == 1
        assert master.clock_drift() == 0
