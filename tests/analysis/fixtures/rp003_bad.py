"""Known-bad RP003 fixture: shared memory without a paired release."""

from multiprocessing import shared_memory


def scratch_segment(nbytes: int) -> shared_memory.SharedMemory:
    return shared_memory.SharedMemory(create=True, size=nbytes)  # expect: RP003


class LeakyHolder:
    """Creates a segment but only ever close()s it, never unlink()s."""

    def __init__(self, nbytes: int) -> None:
        self.shm = shared_memory.SharedMemory(create=True, size=nbytes)  # expect: RP003

    def close(self) -> None:
        self.shm.close()


class ForgetfulHolder:
    """Releases correctly but nothing guarantees release ever runs."""

    def __init__(self, nbytes: int) -> None:
        self.shm = shared_memory.SharedMemory(create=True, size=nbytes)  # expect: RP003

    def close(self) -> None:
        self.shm.close()
        self.shm.unlink()
