"""Tests for split-candidate proposal and bucketization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import CSRMatrix
from repro.errors import DataError, SketchError
from repro.sketch import (
    CandidateSet,
    propose_candidates,
    propose_candidates_from_sketches,
    sketch_columns,
)


@pytest.fixture(scope="module")
def simple_matrix() -> CSRMatrix:
    # Feature 0: values 1..8; feature 1: mixed signs; feature 2: constant.
    rows = []
    for i in range(8):
        rows.append(
            [(0, float(i + 1)), (1, float(i - 4)), (2, 5.0)]
        )
    return CSRMatrix.from_rows(rows, n_cols=4)


class TestProposal:
    def test_cut_counts_bounded(self, simple_matrix):
        cand = propose_candidates(simple_matrix, max_bins=4)
        for f in range(cand.n_features):
            assert cand.n_cuts(f) <= 3

    def test_cuts_strictly_increasing(self, simple_matrix):
        cand = propose_candidates(simple_matrix, max_bins=6)
        for f in range(cand.n_features):
            cuts = cand.feature_cuts(f)
            assert np.all(np.diff(cuts) > 0)

    def test_constant_feature_single_cut(self, simple_matrix):
        # A constant nonzero feature keeps one cut at its value: it still
        # separates the implicit zeros (absent entries) from the 5.0s.
        cand = propose_candidates(simple_matrix, max_bins=6)
        assert cand.n_cuts(2) == 1
        assert cand.feature_cuts(2)[0] == 5.0

    def test_unseen_feature_no_cuts(self, simple_matrix):
        cand = propose_candidates(simple_matrix, max_bins=6)
        assert cand.n_cuts(3) == 0

    def test_zero_cut_inserted_for_signed_feature(self, simple_matrix):
        cand = propose_candidates(simple_matrix, max_bins=6, include_zero_cut=True)
        assert 0.0 in cand.feature_cuts(1)

    def test_max_bins_validation(self, simple_matrix):
        with pytest.raises(SketchError):
            propose_candidates(simple_matrix, max_bins=1)

    def test_quantile_spread(self):
        # Uniform values should yield near-evenly spread cuts.
        rng = np.random.default_rng(0)
        X = CSRMatrix.from_rows(
            [[(0, float(v))] for v in rng.random(2000)], n_cols=1
        )
        cand = propose_candidates(X, max_bins=5)
        cuts = cand.feature_cuts(0)
        np.testing.assert_allclose(cuts, [0.2, 0.4, 0.6, 0.8], atol=0.05)


class TestBucketization:
    def test_bin_of_semantics(self, simple_matrix):
        cand = propose_candidates(simple_matrix, max_bins=4)
        cuts = cand.feature_cuts(0)
        # Below the first cut -> bucket 0; at/above a cut -> next bucket.
        assert cand.bin_of(0, cuts[0] - 0.001) == 0
        assert cand.bin_of(0, float(cuts[0])) == 1
        assert cand.bin_of(0, cuts[-1] + 100) == len(cuts)

    def test_zero_bin(self, simple_matrix):
        cand = propose_candidates(simple_matrix, max_bins=6)
        for f in range(cand.n_features):
            assert cand.zero_bins[f] == cand.bin_of(f, 0.0)

    def test_bins_for_matches_bin_of(self, tiny_dataset):
        cand = propose_candidates(tiny_dataset.X, max_bins=8)
        X = tiny_dataset.X
        bins_vec = cand.bins_for(X.indices.astype(np.int64), X.data)
        for k in range(0, X.nnz, max(1, X.nnz // 200)):
            f, v = int(X.indices[k]), float(X.data[k])
            assert bins_vec[k] == cand.bin_of(f, v)

    def test_bins_for_shape_check(self, simple_matrix):
        cand = propose_candidates(simple_matrix, max_bins=4)
        with pytest.raises(DataError):
            cand.bins_for(np.array([0, 1]), np.array([1.0]))

    def test_split_value_is_cut(self, simple_matrix):
        cand = propose_candidates(simple_matrix, max_bins=4)
        cuts = cand.feature_cuts(0)
        for j in range(len(cuts)):
            assert cand.split_value(0, j) == cuts[j]

    def test_split_value_out_of_range(self, simple_matrix):
        cand = propose_candidates(simple_matrix, max_bins=4)
        with pytest.raises(DataError):
            cand.split_value(3, 0)  # unseen feature has no cuts

    def test_split_predicate_consistency(self, tiny_dataset):
        """bin(v) <= j  iff  v < split_value(f, j) — the split rule."""
        cand = propose_candidates(tiny_dataset.X, max_bins=8)
        X = tiny_dataset.X
        rng = np.random.default_rng(1)
        for _ in range(200):
            k = rng.integers(X.nnz)
            f, v = int(X.indices[k]), float(X.data[k])
            if cand.n_cuts(f) == 0:
                continue
            j = int(rng.integers(cand.n_cuts(f)))
            went_left = cand.bin_of(f, v) <= j
            assert went_left == (v < cand.split_value(f, j))


class TestSketchProposal:
    def test_sketch_candidates_close_to_exact(self, small_dataset):
        X = small_dataset.X
        exact = propose_candidates(X, max_bins=8, include_zero_cut=False)
        sketches = sketch_columns(X.indptr, X.indices, X.data, X.n_cols, eps=0.005)
        approx = propose_candidates_from_sketches(
            sketches, max_bins=8, include_zero_cut=False
        )
        assert approx.n_features == exact.n_features
        # Compare cuts for the densest features: rank error eps means the
        # cut values should be near the exact quantiles.
        dense_feats = np.argsort(X.column_nnz())[-5:]
        for f in dense_feats:
            e, a = exact.feature_cuts(int(f)), approx.feature_cuts(int(f))
            if len(e) == 0 or len(a) == 0:
                continue
            vals = np.sort(X.column_values(int(f)))
            # Each approx cut should be within a few ranks of some exact cut.
            for cut in a:
                rank_a = np.searchsorted(vals, cut)
                nearest = min(abs(rank_a - np.searchsorted(vals, c)) for c in e)
                assert nearest <= max(3, 0.05 * len(vals))

    def test_validation(self):
        with pytest.raises(SketchError):
            propose_candidates_from_sketches([], max_bins=1)


class TestCandidateSetValidation:
    def test_offsets_must_cover_cuts(self):
        with pytest.raises(SketchError):
            CandidateSet(np.array([0, 1]), np.array([1.0, 2.0]), max_bins=4)

    def test_too_many_cuts_rejected(self):
        with pytest.raises(SketchError):
            CandidateSet(np.array([0, 3]), np.array([1.0, 2.0, 3.0]), max_bins=3)

    def test_feature_cuts_out_of_range(self, simple_matrix):
        cand = propose_candidates(simple_matrix, max_bins=4)
        with pytest.raises(DataError):
            cand.feature_cuts(99)
