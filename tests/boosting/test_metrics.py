"""Tests for evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boosting import accuracy, auc, error_rate, logloss, rmse
from repro.errors import DataError


class TestErrorRate:
    def test_hand_case(self):
        y = np.array([1.0, 0.0, 1.0, 0.0])
        p = np.array([0.9, 0.2, 0.4, 0.6])
        assert error_rate(y, p) == pytest.approx(0.5)

    def test_perfect(self):
        y = np.array([1.0, 0.0])
        assert error_rate(y, np.array([0.99, 0.01])) == 0.0

    def test_accuracy_complement(self):
        y = np.array([1.0, 0.0, 1.0])
        p = np.array([0.9, 0.9, 0.9])
        assert accuracy(y, p) == pytest.approx(1.0 - error_rate(y, p))

    def test_threshold(self):
        y = np.array([1.0])
        assert error_rate(y, np.array([0.3]), threshold=0.25) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            error_rate(np.zeros(2), np.zeros(3))

    def test_empty(self):
        with pytest.raises(DataError):
            error_rate(np.array([]), np.array([]))


class TestLogloss:
    def test_hand_case(self):
        y = np.array([1.0, 0.0])
        p = np.array([0.8, 0.8])
        expected = -(np.log(0.8) + np.log(0.2)) / 2
        assert logloss(y, p) == pytest.approx(expected)

    def test_clipping_prevents_infinity(self):
        y = np.array([1.0])
        assert np.isfinite(logloss(y, np.array([0.0])))


class TestRmse:
    def test_hand_case(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_zero_for_exact(self):
        y = np.array([1.0, 2.0])
        assert rmse(y, y) == 0.0


class TestAuc:
    def test_perfect_ranking(self):
        y = np.array([0.0, 0.0, 1.0, 1.0])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc(y, s) == 1.0

    def test_inverted_ranking(self):
        y = np.array([0.0, 1.0])
        s = np.array([0.9, 0.1])
        assert auc(y, s) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = (rng.random(4000) < 0.5).astype(float)
        s = rng.random(4000)
        assert auc(y, s) == pytest.approx(0.5, abs=0.03)

    def test_ties_get_half_credit(self):
        y = np.array([0.0, 1.0])
        s = np.array([0.5, 0.5])
        assert auc(y, s) == pytest.approx(0.5)

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(1)
        y = (rng.random(50) < 0.4).astype(float)
        s = rng.normal(size=50)
        pos = s[y > 0.5]
        neg = s[y <= 0.5]
        wins = sum(
            1.0 if p > n else 0.5 if p == n else 0.0 for p in pos for n in neg
        )
        assert auc(y, s) == pytest.approx(wins / (len(pos) * len(neg)))

    def test_single_class_rejected(self):
        with pytest.raises(DataError):
            auc(np.ones(3), np.zeros(3))

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(2)
        y = (rng.random(100) < 0.5).astype(float)
        s = rng.normal(size=100)
        assert auc(y, s) == pytest.approx(auc(y, 1 / (1 + np.exp(-s))))
