"""Known-good RP010 twin: pre-encoded payloads ride the window seam.

``push_window_rows`` is the PR 8 pre-encode seam — it delivers entries
verbatim, no second quantization — and an uncompressed ``push_row`` is
always fine.
"""

from repro.compression.lowprec import compress_flat


def flush(group, grad, bits, rng):
    encoded = compress_flat(grad, bits, rng)
    entries = [(0, 0, encoded.payload, encoded.wire_bytes)]
    group.push_window_rows("grad", entries, seq=3)


def push_raw(group, grad):
    group.push_row("grad", 0, grad, seq=4)
