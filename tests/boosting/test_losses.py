"""Tests for the loss functions and their gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boosting import LogisticLoss, SquaredLoss, get_loss
from repro.errors import ConfigError


def numeric_gradients(loss, y, raw, eps=1e-5):
    """Central-difference first and second derivatives of the mean loss,
    scaled back to per-instance derivatives."""
    n = len(y)
    g = np.empty(n)
    h = np.empty(n)
    for i in range(n):
        plus, minus = raw.copy(), raw.copy()
        plus[i] += eps
        minus[i] -= eps
        lp, lm, l0 = (
            loss.loss(y, plus) * n,
            loss.loss(y, minus) * n,
            loss.loss(y, raw) * n,
        )
        g[i] = (lp - lm) / (2 * eps)
        h[i] = (lp - 2 * l0 + lm) / (eps * eps)
    return g, h


class TestLogistic:
    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(0)
        loss = LogisticLoss()
        y = (rng.random(10) < 0.5).astype(np.float64)
        raw = rng.normal(size=10)
        g, h = loss.gradients(y, raw)
        g_num, h_num = numeric_gradients(loss, y, raw)
        np.testing.assert_allclose(g, g_num, atol=1e-5)
        np.testing.assert_allclose(h, h_num, atol=1e-3)

    def test_gradient_signs(self):
        loss = LogisticLoss()
        g, h = loss.gradients(np.array([1.0, 0.0]), np.array([0.0, 0.0]))
        assert g[0] < 0  # positive label pushes prediction up
        assert g[1] > 0
        assert np.all(h > 0)

    def test_base_score_is_prior_logodds(self):
        loss = LogisticLoss()
        y = np.array([1.0, 1.0, 1.0, 0.0])
        assert loss.base_score(y) == pytest.approx(np.log(3.0))

    def test_base_score_degenerate_labels(self):
        loss = LogisticLoss()
        assert np.isfinite(loss.base_score(np.ones(5)))
        assert np.isfinite(loss.base_score(np.zeros(5)))

    def test_transform_is_sigmoid(self):
        loss = LogisticLoss()
        np.testing.assert_allclose(
            loss.transform(np.array([0.0])), [0.5], atol=1e-12
        )

    def test_loss_stable_at_extremes(self):
        loss = LogisticLoss()
        value = loss.loss(np.array([1.0, 0.0]), np.array([1000.0, -1000.0]))
        assert np.isfinite(value)
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_loss_decreases_toward_label(self):
        loss = LogisticLoss()
        y = np.array([1.0])
        worse = loss.loss(y, np.array([-1.0]))
        better = loss.loss(y, np.array([1.0]))
        assert better < worse


class TestSquared:
    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(1)
        loss = SquaredLoss()
        y = rng.normal(size=8)
        raw = rng.normal(size=8)
        g, h = loss.gradients(y, raw)
        g_num, h_num = numeric_gradients(loss, y, raw)
        # loss() is (y - raw)^2, so dl/draw = 2 (raw - y); the trainer's
        # convention drops the 2 (absorbed into the learning rate).
        np.testing.assert_allclose(2 * g, g_num, atol=1e-5)
        np.testing.assert_allclose(2 * h, h_num, atol=1e-3)

    def test_base_score_is_mean(self):
        loss = SquaredLoss()
        assert loss.base_score(np.array([1.0, 2.0, 6.0])) == pytest.approx(3.0)

    def test_transform_identity(self):
        loss = SquaredLoss()
        raw = np.array([1.5, -2.0])
        np.testing.assert_array_equal(loss.transform(raw), raw)


class TestRegistry:
    def test_get_by_name(self):
        assert get_loss("logistic").name == "logistic"
        assert get_loss("squared").name == "squared"

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            get_loss("hinge")
