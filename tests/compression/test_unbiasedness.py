"""Empirical verification of the Appendix A.1 unbiasedness result.

The paper proves that the low-precision histogram keeps the expected
bucket sums — and hence the expected objective gain — unchanged.  These
tests verify the estimator is unbiased and that downstream split gains
stay centred on their full-precision values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import compress_flat, decompress_flat


class TestUnbiasedness:
    def test_mean_of_decoded_converges(self):
        """Averaging many independent encodings recovers the input."""
        rng = np.random.default_rng(0)
        values = np.array([0.123, -0.456, 0.789, -0.999, 0.001, 0.25])
        n_trials = 4000
        acc = np.zeros_like(values)
        for _ in range(n_trials):
            acc += decompress_flat(compress_flat(values, 8, rng))
        mean = acc / n_trials
        # Std error of the mean ~ (c / 127) / sqrt(12 * n_trials) ~ 1e-4.
        np.testing.assert_allclose(mean, values, atol=6e-4)

    def test_unbiased_for_2bit(self):
        """Even the coarsest width is unbiased (errors just get bigger)."""
        rng = np.random.default_rng(1)
        values = np.array([0.3, -0.7, 1.0])
        n_trials = 8000
        acc = np.zeros_like(values)
        for _ in range(n_trials):
            acc += decompress_flat(compress_flat(values, 2, rng))
        np.testing.assert_allclose(acc / n_trials, values, atol=0.02)

    def test_bucket_prefix_sums_unbiased(self):
        """G_L = sum of left buckets stays unbiased after quantization —
        the quantity Appendix A.1 reasons about."""
        rng = np.random.default_rng(2)
        buckets = rng.normal(size=20)
        true_prefix = np.cumsum(buckets)
        n_trials = 3000
        acc = np.zeros_like(true_prefix)
        for _ in range(n_trials):
            decoded = decompress_flat(compress_flat(buckets, 8, rng))
            acc += np.cumsum(decoded)
        np.testing.assert_allclose(acc / n_trials, true_prefix, atol=0.01)

    def test_gain_expectation_close(self):
        """The argmax-gain of the decoded histogram matches full precision
        almost always at d = 8 (the paper's 'no loss on final accuracy')."""
        from repro.datasets import CSRMatrix
        from repro.histogram import BinnedShard, build_node_histogram_sparse
        from repro.sketch import propose_candidates
        from repro.tree.split import find_best_split
        from repro.histogram.histogram import GradientHistogram

        rng = np.random.default_rng(3)
        dense = (rng.random((200, 10)) < 0.5) * rng.normal(size=(200, 10))
        X = CSRMatrix.from_dense(dense.astype(np.float32))
        cand = propose_candidates(X, max_bins=6)
        shard = BinnedShard(X, cand)
        # Gradients driven by feature 3, so its split gain dominates and
        # quantization noise cannot flip the argmax (the A.1 setting:
        # the expected gain landscape is preserved).
        g = np.where(dense[:, 3] > 0.0, -2.0, 2.0) + 0.1 * rng.normal(size=200)
        h = np.ones(200)
        hist = build_node_histogram_sparse(shard, np.arange(200), g, h)
        exact = find_best_split(hist, cand, reg_lambda=1.0)
        assert exact is not None
        assert exact.feature == 3

        feature_agree = 0
        gain_ratios = []
        n_trials = 50
        for _ in range(n_trials):
            flat = hist.to_flat_feature_major()
            decoded = decompress_flat(compress_flat(flat, 8, rng))
            noisy = GradientHistogram.from_flat_feature_major(
                decoded, X.n_cols, cand.max_bins
            )
            approx = find_best_split(noisy, cand, reg_lambda=1.0)
            assert approx is not None
            if approx.feature == exact.feature:
                feature_agree += 1
            gain_ratios.append(approx.gain / exact.gain)
        assert feature_agree >= int(0.9 * n_trials)
        # The recovered best gain is centred on the true one.
        assert abs(float(np.mean(gain_ratios)) - 1.0) < 0.05

    def test_error_variance_shrinks_with_bits(self):
        rng = np.random.default_rng(4)
        values = rng.normal(size=500)
        errors = {}
        for bits in (2, 4, 8, 16):
            decoded = decompress_flat(compress_flat(values, bits, rng))
            errors[bits] = float(np.mean((decoded - values) ** 2))
        assert errors[2] > errors[4] > errors[8] > errors[16]
