"""Compiled flat-ensemble scoring: struct-of-arrays, row-blocked.

``GBDTModel.predict_raw`` used to loop over trees one at a time, and
every ``RegressionTree.leaf_of`` call re-derived the whole CSC view of
the input and scattered one dense column per (tree, level, feature) —
O(T) matrix conversions and thousands of small numpy calls per predict.
Booster (arXiv:2011.02022) and GPU XGBoost (arXiv:1806.11248) show that
ensemble traversal is memory-bound and is fixed by the same shape: lay
*all* trees out contiguously and walk them level-synchronously over
blocks of instances.

:class:`FlatEnsemble` is that execution model:

* **Compile once.** Every tree gets a uniform ``2**D - 1`` slot slab
  (D = the ensemble's deepest tree) holding ``split_feature`` /
  ``split_value`` / ``weight`` back to back; shallow leaves are *padded*
  to the bottom level (an always-left pseudo-split whose children carry
  the leaf's weight), so traversal needs no per-level "is this row still
  active" mask at all.  The features the ensemble actually uses are
  remapped to a compact ``[0, n_used)`` column space, pre-resolved per
  slot (``slot_col``) so the hot loop never touches feature ids.
* **Densify used columns once per block.** Scoring walks the input in
  contiguous row blocks sized for cache residency; each block scatters
  its nonzeros that hit ensemble-used features into one reusable
  ``(block_rows, n_used)`` float64 panel straight from the row-native
  CSR arrays (a block of rows is one contiguous ``indices``/``data``
  slice — no per-tree, per-level column scatters, and no CSC conversion
  at all on this path; the memoized :meth:`CSRMatrix.to_csc` keeps the
  per-tree reference predictor fast instead).
* **Traverse all trees at once.** One ``(block_rows, n_trees)`` cursor
  of *global* slot ids descends every tree simultaneously — three
  fancy-gathers and five elementwise ops per level, every intermediate
  written into preallocated scratch.

Bit-identity contract: the flat path performs exactly the comparisons
of :meth:`RegressionTree.leaf_of` (float32 feature values promoted to
float64 against float64 thresholds, absent features routed as 0.0 by
``0 < threshold``; padded pseudo-splits compare against ``+inf`` and
carry the leaf weight on *both* children, so even NaN values land on
the same weight) and accumulates leaf weights in boosting order from
the same float64 base score — raw scores equal the per-tree reference
bit for bit, which the tests and ``benchmarks/bench_ext_inference.py``
assert on every configuration.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..datasets.sparse import CSRMatrix
from ..errors import DataError, TrainingError
from ..tree.tree import LEAF, UNUSED, RegressionTree

__all__ = ["FlatEnsemble", "DEFAULT_BLOCK_BYTES"]

#: Target footprint of one block's dense feature panel (float64).  The
#: panel plus the per-level scratch should sit in L2/L3, not RAM.
DEFAULT_BLOCK_BYTES = 4 * 1024 * 1024

#: Never shrink blocks below this many rows — tiny blocks pay python
#: dispatch per block instead of amortizing it.
MIN_BLOCK_ROWS = 64


class _Scratch:
    """Reusable per-call buffers: one block panel + (rows, trees) planes.

    Allocated once per scoring call and reused across every block and
    level, so the hot loop performs no allocations (the per-call
    ``dense_col`` / ``goes_left`` churn of the per-tree path is gone).
    """

    def __init__(self, n_rows: int, n_trees: int, n_used: int) -> None:
        shape = (n_rows, n_trees)
        self.block = np.zeros((n_rows, max(1, n_used)), dtype=np.float64)
        self.node = np.empty(shape, dtype=np.int64)
        self.cols = np.empty(shape, dtype=np.int32)
        self.pos = np.empty(shape, dtype=np.int64)
        self.vals = np.empty(shape, dtype=np.float64)
        self.thresh = np.empty(shape, dtype=np.float64)
        self.goes = np.empty(shape, dtype=bool)
        self.weights = np.empty(shape, dtype=np.float64)
        self.acc = np.empty(n_rows, dtype=np.float64)
        # Row r of the block starts at flat panel position r * n_used.
        self.row_base = (
            np.arange(n_rows, dtype=np.int64) * max(1, n_used)
        )[:, None]


class FlatEnsemble:
    """An ensemble compiled to contiguous struct-of-arrays for scoring.

    Attributes:
        n_trees: Number of compiled trees T.
        n_features: Feature-space width the model was trained on.
        max_depth: Uniform compiled depth D (the deepest tree's).
        slab: Slots per tree, ``2**D - 1``.
        split_feature: int32 ``(T * slab,)``; feature id, or LEAF /
            UNUSED (padded pseudo-splits keep LEAF).
        split_value: float64 thresholds (``+inf`` on pseudo-splits).
        weight: float64 leaf weights (propagated down padded chains).
        slot_col: int32 compact column per slot (0 on non-internal
            slots — they compare against ``+inf``, so the gathered
            value never matters).
        leaf_origin: int64 local slot of the *original* leaf each
            bottom slot descends from (inverts the padding).
        tree_offset: int64 (T,); tree ``t`` owns slots
            ``[t * slab, (t + 1) * slab)``.
        used_features: Sorted unique features any real split tests.
        col_of_feature: int32 inverse map, ``-1`` for unused features.
    """

    def __init__(
        self, trees: Sequence[RegressionTree], n_features: int
    ) -> None:
        self.n_trees = len(trees)
        self.n_features = int(n_features)
        self.max_depth = max((t.max_depth for t in trees), default=1)
        self.slab = (1 << self.max_depth) - 1
        self.tree_offset = (
            np.arange(self.n_trees, dtype=np.int64) * self.slab
        )
        total = self.n_trees * self.slab
        self.split_feature = np.full(total, UNUSED, dtype=np.int32)
        self.split_value = np.zeros(total, dtype=np.float64)
        self.weight = np.zeros(total, dtype=np.float64)
        for t, tree in enumerate(trees):
            if tree.split_feature[0] == UNUSED:
                raise TrainingError(f"tree {t} has no root")
            lo = t * self.slab
            hi = lo + tree.max_nodes
            self.split_feature[lo:hi] = tree.split_feature
            self.split_value[lo:hi] = tree.split_value
            self.weight[lo:hi] = tree.weight
        internal = self.split_feature[self.split_feature >= 0]
        if internal.size and int(internal.max()) >= self.n_features:
            raise DataError(
                f"ensemble splits on feature {int(internal.max())}, model "
                f"width is {self.n_features}"
            )
        self.used_features = np.unique(internal).astype(np.int64)
        self.n_used = len(self.used_features)
        self.col_of_feature = np.full(
            max(1, self.n_features), -1, dtype=np.int32
        )
        self.col_of_feature[self.used_features] = np.arange(
            self.n_used, dtype=np.int32
        )
        self._pad_to_full_depth()
        # Pre-resolve each slot's compact column: the hot loop gathers
        # slot -> column directly, never touching feature ids.  Slot 0
        # on non-internal slots is harmless — their threshold is +inf.
        self.slot_col = self.col_of_feature[
            np.maximum(self.split_feature, 0)
        ].astype(np.int32)
        self.slot_col[self.split_feature < 0] = 0

    def _pad_to_full_depth(self) -> None:
        """Push every shallow leaf down to the bottom level.

        A leaf above the bottom becomes a pseudo-split with threshold
        ``+inf`` (every value, 0.0 included, routes left) whose children
        both carry the leaf's weight — so traversal can descend
        ``max_depth - 1`` levels unconditionally and read a weight at
        whatever slot it lands on.  ``leaf_origin`` records the original
        leaf each padded slot stands in for.
        """
        self.leaf_origin = np.tile(
            np.arange(self.slab, dtype=np.int64), self.n_trees
        )
        if self.n_trees == 0:
            return
        # Level by level, top down (so padded children created at level d
        # are themselves padded at level d+1), all trees at once; local
        # heap slots of level d are [2**d - 1, 2**(d+1) - 2].
        feat = self.split_feature.reshape(self.n_trees, self.slab)
        value = self.split_value.reshape(self.n_trees, self.slab)
        weight = self.weight.reshape(self.n_trees, self.slab)
        origin = self.leaf_origin.reshape(self.n_trees, self.slab)
        for depth in range(self.max_depth - 1):
            lo, hi = (1 << depth) - 1, (1 << (depth + 1)) - 1
            tree_ids, local = np.nonzero(feat[:, lo:hi] == LEAF)
            if len(tree_ids) == 0:
                continue
            local = local + lo
            left, right = 2 * local + 1, 2 * local + 2
            value[tree_ids, local] = np.inf
            for child in (left, right):
                feat[tree_ids, child] = LEAF
                weight[tree_ids, child] = weight[tree_ids, local]
                origin[tree_ids, child] = origin[tree_ids, local]

    @classmethod
    def compile(
        cls, trees: Sequence[RegressionTree], n_features: int
    ) -> "FlatEnsemble":
        """Alias constructor, for symmetry with ``model.compiled()``."""
        return cls(trees, n_features)

    # ------------------------------------------------------------------
    # public scoring API
    # ------------------------------------------------------------------

    def predict_raw(
        self,
        X: CSRMatrix,
        base_score: float = 0.0,
        n_trees: int | None = None,
        batch_rows: int | None = None,
        n_processes: int = 1,
    ) -> np.ndarray:
        """Raw margin scores, bit-identical to the per-tree reference.

        Args:
            X: Input rows; ``X.n_cols`` may be narrower than the model
                (absent features score as 0.0) but not wider.
            base_score: Constant every row starts from.
            n_trees: Truncate to the first trees (slice semantics, like
                ``trees[:n_trees]``).
            batch_rows: Rows per block; default sizes the block's dense
                panel to ~:data:`DEFAULT_BLOCK_BYTES`.
            n_processes: With >= 2, score row blocks on a shared-memory
                process pool (falls back to this serial path when pools
                are unusable — see :mod:`repro.inference.parallel`).
        """
        n_use = self._n_use(n_trees)
        if n_processes > 1 and X.n_rows > 1:
            from .parallel import ParallelScorer

            with ParallelScorer(
                self, n_processes=n_processes, batch_rows=batch_rows
            ) as scorer:
                return scorer.predict_raw(
                    X, base_score=base_score, n_trees=n_trees
                )
        out = np.empty(X.n_rows, dtype=np.float64)
        self.score_into(
            X, out, base_score=base_score, n_use=n_use, batch_rows=batch_rows
        )
        return out

    def predict_raw_classes(
        self,
        X: CSRMatrix,
        base_scores: np.ndarray,
        n_classes: int,
        batch_rows: int | None = None,
    ) -> np.ndarray:
        """Score round-major multiclass trees in one shared traversal.

        The compiled trees must be laid out round-major (round 0's K
        class trees, then round 1's, ...); every class reuses the single
        level-synchronous traversal and block panel, instead of K * T
        separate ``leaf_of`` passes.  Returns ``(n_rows, n_classes)``
        float64 margins, bit-identical to the per-group reference loop.
        """
        if n_classes < 1 or self.n_trees % n_classes:
            raise DataError(
                f"{self.n_trees} trees do not split into {n_classes} classes"
            )
        base_scores = np.asarray(base_scores, dtype=np.float64)
        out = np.tile(base_scores, (X.n_rows, 1))
        if self.n_trees == 0 or X.n_rows == 0:
            return out
        batch = self._resolve_batch(batch_rows, X.n_rows)
        scratch = _Scratch(min(batch, X.n_rows), self.n_trees, self.n_used)
        col_of = self._col_lookup(X)
        for lo in range(0, X.n_rows, batch):
            hi = min(lo + batch, X.n_rows)
            weights = self._leaf_weights_block(
                X, lo, hi, self.n_trees, scratch, col_of
            )
            # Boosting order per class: round-major columns t = r*K + k.
            for t in range(self.n_trees):
                out[lo:hi, t % n_classes] += weights[:, t]
        return out

    def leaf_slots(
        self,
        X: CSRMatrix,
        n_trees: int | None = None,
        batch_rows: int | None = None,
    ) -> np.ndarray:
        """Per-tree *local* leaf slot ids, shape ``(n_rows, n_trees)``.

        Column ``t`` equals ``trees[t].leaf_of(X)`` — ``leaf_origin``
        maps each padded bottom slot back to the original leaf, and the
        oracle tests compare against exactly that.
        """
        n_use = self._n_use(n_trees)
        out = np.zeros((X.n_rows, n_use), dtype=np.int64)
        if n_use == 0 or X.n_rows == 0:
            return out
        batch = self._resolve_batch(batch_rows, X.n_rows)
        scratch = _Scratch(min(batch, X.n_rows), n_use, self.n_used)
        col_of = self._col_lookup(X)
        for lo in range(0, X.n_rows, batch):
            hi = min(lo + batch, X.n_rows)
            node = self._traverse_block(X, lo, hi, n_use, scratch, col_of)
            out[lo:hi] = self.leaf_origin[node]
        return out

    def score_into(
        self,
        X: CSRMatrix,
        out: np.ndarray,
        base_score: float,
        n_use: int,
        batch_rows: int | None = None,
        start: int = 0,
        stop: int | None = None,
    ) -> None:
        """Score rows ``[start, stop)`` into ``out[start:stop]``.

        The span form is what the process-parallel workers call: each
        worker owns a disjoint row span of a shared output vector, so
        any chunking produces the same bits (rows are independent).
        """
        stop = X.n_rows if stop is None else stop
        if stop <= start:
            return
        batch = self._resolve_batch(batch_rows, stop - start)
        scratch = _Scratch(min(batch, stop - start), n_use, self.n_used)
        col_of = self._col_lookup(X)
        for lo in range(start, stop, batch):
            hi = min(lo + batch, stop)
            n = hi - lo
            weights = self._leaf_weights_block(X, lo, hi, n_use, scratch, col_of)
            acc = scratch.acc[:n]
            acc[:] = base_score
            # Tree-order accumulation: the same float64 addition sequence
            # as `raw += tree.predict(X)` per boosting round.
            for t in range(n_use):
                acc += weights[:, t]
            out[lo:hi] = acc

    # ------------------------------------------------------------------
    # block kernels
    # ------------------------------------------------------------------

    def _leaf_weights_block(
        self,
        X: CSRMatrix,
        lo: int,
        hi: int,
        n_use: int,
        scratch: _Scratch,
        col_of: np.ndarray,
    ) -> np.ndarray:
        """Leaf weight of rows ``[lo, hi)`` in every tree: ``(n, n_use)``."""
        n = hi - lo
        node = self._traverse_block(X, lo, hi, n_use, scratch, col_of)
        weights = scratch.weights[:n, :n_use]
        np.take(self.weight, node, out=weights, mode="wrap")
        return weights

    def _traverse_block(
        self,
        X: CSRMatrix,
        lo: int,
        hi: int,
        n_use: int,
        scratch: _Scratch,
        col_of: np.ndarray,
    ) -> np.ndarray:
        """Level-synchronous descent of all trees over rows ``[lo, hi)``.

        Returns the ``(n, n_use)`` *global* slot per (row, tree) — a
        view into scratch, valid until the next block.  Thanks to the
        full-depth padding there is no per-level active mask: every row
        descends exactly ``max_depth - 1`` levels in every tree.
        """
        n = hi - lo
        block = scratch.block[:n]
        flat_block = block.ravel()

        # Densify ensemble-used columns of this row block: one gather +
        # one scatter over the block's contiguous CSR slice, at flat
        # (row * n_used + col) positions.
        s, e = int(X.indptr[lo]), int(X.indptr[hi])
        entry_col = col_of[X.indices[s:e]]
        used = entry_col >= 0
        entry_row = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(X.indptr[lo : hi + 1])
        )[used]
        entry_pos = entry_row * max(1, self.n_used)
        entry_pos += entry_col[used]
        flat_block[entry_pos] = X.data[s:e][used]

        node = scratch.node[:n, :n_use]
        offsets = self.tree_offset[:n_use]
        # Descent in global slots: child = 2*g + (2 - offset) - goes_left
        # (global g = offset + local, local child = 2*local + 2 - goes).
        bias = 2 - offsets
        node[:] = offsets  # every row starts at each tree's root
        cols = scratch.cols[:n, :n_use]
        pos = scratch.pos[:n, :n_use]
        vals = scratch.vals[:n, :n_use]
        thresh = scratch.thresh[:n, :n_use]
        goes = scratch.goes[:n, :n_use]
        row_base = scratch.row_base[:n]
        for _ in range(self.max_depth - 1):
            # mode="wrap" skips numpy's per-element bounds check; the
            # descent can only produce in-range slots (and the tests
            # assert bit-identity, so a wrap-around could not hide).
            np.take(self.slot_col, node, out=cols, mode="wrap")
            np.add(row_base, cols, out=pos)
            np.take(flat_block, pos, out=vals, mode="wrap")
            np.take(self.split_value, node, out=thresh, mode="wrap")
            # The exact comparison RegressionTree.leaf_of performs
            # (DESIGN §4b: an absent feature is the value 0.0, routed by
            # ``0 < threshold``); pseudo-splits compare against +inf.
            np.less(vals, thresh, out=goes)
            np.multiply(node, 2, out=node)
            np.add(node, bias, out=node)
            np.subtract(node, goes, out=node)

        # Reset only the touched panel entries for the next block.
        flat_block[entry_pos] = 0.0
        return node

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _col_lookup(self, X: CSRMatrix) -> np.ndarray:
        """Column map sized to cover ``X``'s width (extra cols unused)."""
        if X.n_cols <= len(self.col_of_feature):
            return self.col_of_feature
        pad = np.full(X.n_cols, -1, dtype=np.int32)
        pad[: len(self.col_of_feature)] = self.col_of_feature
        return pad

    def _n_use(self, n_trees: int | None) -> int:
        """Python slice semantics of ``trees[:n_trees]``."""
        if n_trees is None:
            return self.n_trees
        return len(range(self.n_trees)[:n_trees])

    def _resolve_batch(self, batch_rows: int | None, n_rows: int) -> int:
        if batch_rows is not None:
            if batch_rows < 1:
                raise DataError(f"batch_rows must be >= 1, got {batch_rows}")
            return batch_rows
        per_row = 8 * max(1, self.n_used)
        rows = DEFAULT_BLOCK_BYTES // per_row
        return int(min(max(rows, MIN_BLOCK_ROWS), max(1, n_rows)))

    def __repr__(self) -> str:
        return (
            f"FlatEnsemble(n_trees={self.n_trees}, max_depth={self.max_depth}, "
            f"n_features={self.n_features}, n_used={self.n_used})"
        )
