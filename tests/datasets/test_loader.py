"""Tests for LibSVM-format IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    SyntheticSpec,
    load_libsvm,
    make_sparse_classification,
    save_libsvm,
)
from repro.errors import DataError


class TestParsing:
    def test_basic_file(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 1:0.5 3:2.0\n0 2:1.5\n")
        data = load_libsvm(path)
        assert data.n_instances == 2
        assert data.n_features == 3  # 1-based max index 3 -> 0-based cols 0..2
        np.testing.assert_array_equal(data.y, [1.0, 0.0])
        idx, val = data.X.row(0)
        assert idx.tolist() == [0, 2]
        np.testing.assert_allclose(val, [0.5, 2.0])

    def test_zero_based(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 0:0.5\n")
        data = load_libsvm(path, one_based=False)
        assert data.n_features == 1

    def test_skips_blank_and_comment_lines(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("# header\n\n1 1:1.0\n")
        data = load_libsvm(path)
        assert data.n_instances == 1

    def test_trailing_comment_token(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 1:1.0 # trailing\n")
        data = load_libsvm(path)
        assert data.X.nnz == 1

    def test_explicit_n_features(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 1:1.0\n")
        data = load_libsvm(path, n_features=10)
        assert data.n_features == 10

    def test_index_beyond_n_features(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 11:1.0\n")
        with pytest.raises(DataError, match="beyond"):
            load_libsvm(path, n_features=5)

    def test_bad_label(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("spam 1:1.0\n")
        with pytest.raises(DataError, match="bad label"):
            load_libsvm(path)

    def test_bad_token(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 1-1.0\n")
        with pytest.raises(DataError, match="bad feature token"):
            load_libsvm(path)

    def test_duplicate_index(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 1:1.0 1:2.0\n")
        with pytest.raises(DataError, match="duplicate"):
            load_libsvm(path)

    def test_negative_index(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 0:1.0\n")
        with pytest.raises(DataError, match="below range"):
            load_libsvm(path)  # one_based: 0 becomes -1

    def test_unsorted_indices_accepted(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 5:5.0 2:2.0\n")
        data = load_libsvm(path)
        idx, val = data.X.row(0)
        assert idx.tolist() == [1, 4]
        np.testing.assert_allclose(val, [2.0, 5.0])


class TestRoundTrip:
    def test_synthetic_roundtrip(self, tmp_path):
        spec = SyntheticSpec(n_instances=50, n_features=30, avg_nnz=5)
        data = make_sparse_classification(spec, seed=0)
        path = tmp_path / "round.txt"
        save_libsvm(data, path)
        loaded = load_libsvm(path, n_features=30)
        np.testing.assert_array_equal(loaded.y, data.y)
        np.testing.assert_array_equal(loaded.X.indices, data.X.indices)
        np.testing.assert_allclose(loaded.X.data, data.X.data, rtol=1e-5)

    def test_zero_based_roundtrip(self, tmp_path):
        spec = SyntheticSpec(n_instances=20, n_features=10, avg_nnz=3)
        data = make_sparse_classification(spec, seed=1)
        path = tmp_path / "round0.txt"
        save_libsvm(data, path, one_based=False)
        loaded = load_libsvm(path, n_features=10, one_based=False)
        np.testing.assert_array_equal(loaded.X.indices, data.X.indices)

    def test_regression_labels_preserved(self, tmp_path):
        from repro.datasets import make_sparse_regression

        spec = SyntheticSpec(n_instances=20, n_features=10, avg_nnz=3)
        data = make_sparse_regression(spec, seed=2)
        path = tmp_path / "reg.txt"
        save_libsvm(data, path)
        loaded = load_libsvm(path, n_features=10)
        np.testing.assert_allclose(loaded.y, data.y, rtol=1e-4)
