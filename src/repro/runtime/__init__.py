"""The unified training runtime.

Four seams shared by every trainer (single-machine, multiclass,
distributed):

* :mod:`~repro.runtime.loop` — :class:`BoostingLoop`, the one per-tree
  cycle, parameterized by a :class:`TreeGrowthStrategy`;
* :mod:`~repro.runtime.phases` — :class:`PhaseRunner` /
  :class:`PhaseStage`, the Section 4.4 worker phases as stage objects
  owning lockstep transitions and time attribution;
* :mod:`~repro.runtime.hooks` — the :class:`TrainerCallback` spine that
  observability attaches to at stage boundaries;
* :mod:`~repro.runtime.build` — :class:`HistogramBuildStrategy`
  (dense / sparse / batched / process-parallel) replacing per-trainer
  boolean flags.

See ``docs/runtime.md`` for how a new execution backend plugs in.
"""

from .build import (
    BatchedBuildStrategy,
    DenseBuildStrategy,
    HistogramBuildStrategy,
    ProcessParallelBuildStrategy,
    SparseBuildStrategy,
    resolve_build_strategy,
)
from .hooks import (
    CallbackList,
    HistoryCollector,
    PhaseAccountant,
    RecordingCallback,
    TrainerCallback,
    as_callback_list,
)
from .loop import BoostingLoop, TreeGrowthStrategy, sample_features
from .phases import PhaseRunner, PhaseStage, WorkerTimer, scale_by_speeds

__all__ = [
    "BoostingLoop",
    "TreeGrowthStrategy",
    "sample_features",
    "PhaseRunner",
    "PhaseStage",
    "WorkerTimer",
    "scale_by_speeds",
    "TrainerCallback",
    "CallbackList",
    "HistoryCollector",
    "PhaseAccountant",
    "RecordingCallback",
    "as_callback_list",
    "HistogramBuildStrategy",
    "DenseBuildStrategy",
    "SparseBuildStrategy",
    "BatchedBuildStrategy",
    "ProcessParallelBuildStrategy",
    "resolve_build_strategy",
]
