"""Histogram build strategies: how one node histogram gets constructed.

Replaces the boolean tangle (``sparse_build`` / ``batched_build`` /
``dense_build`` flags threaded through trainers and backends) with one
strategy object chosen once per fit:

* :class:`DenseBuildStrategy` — the traditional full scan over all
  ``M * K`` buckets (what the baseline systems do, Section 5.1).
* :class:`SparseBuildStrategy` — Algorithm 2's sparsity-aware build,
  O(zN + M) (DimBoost's C3 optimization).
* :class:`BatchedBuildStrategy` — Section 5.2's parallel batch
  construction over either kernel, reporting the simulated multi-core
  *span* instead of the serial wall-clock.

Every strategy returns ``(histogram, seconds)`` where ``seconds`` is
what a simulated worker should be charged for the build — measured
wall-clock for the serial kernels, simulated span for the batched one —
so the engine's phase barrier code no longer branches on how the
histogram was built.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

import numpy as np

from ..config import TrainConfig
from ..histogram.binned import BinnedShard
from ..histogram.builder import (
    build_node_histogram_dense,
    build_node_histogram_sparse,
)
from ..histogram.histogram import GradientHistogram
from ..histogram.parallel import build_histogram_batched

__all__ = [
    "HistogramBuildStrategy",
    "DenseBuildStrategy",
    "SparseBuildStrategy",
    "BatchedBuildStrategy",
    "resolve_build_strategy",
]


class HistogramBuildStrategy(ABC):
    """How a worker constructs one node's gradient histogram."""

    #: Short identifier used in logs and reprs.
    name: str = "abstract"
    #: Whether the underlying kernel is the traditional dense scan.
    dense: bool = False

    @abstractmethod
    def build(
        self,
        shard: BinnedShard,
        rows: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
    ) -> tuple[GradientHistogram, float]:
        """Build one node histogram.

        Returns:
            ``(histogram, seconds)`` — the histogram plus the seconds a
            simulated worker is charged for building it.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class DenseBuildStrategy(HistogramBuildStrategy):
    """Traditional dense scan over every (feature, bucket) pair."""

    name = "dense"
    dense = True

    def build(self, shard, rows, grad, hess):
        started = time.perf_counter()
        histogram = build_node_histogram_dense(shard, rows, grad, hess)
        return histogram, time.perf_counter() - started


class SparseBuildStrategy(HistogramBuildStrategy):
    """Algorithm 2: touch only the nonzeros, fold totals into zero bins."""

    name = "sparse"
    dense = False

    def build(self, shard, rows, grad, hess):
        started = time.perf_counter()
        histogram = build_node_histogram_sparse(shard, rows, grad, hess)
        return histogram, time.perf_counter() - started


class BatchedBuildStrategy(HistogramBuildStrategy):
    """Section 5.2 parallel batch construction over a base kernel.

    The returned seconds are the simulated multi-core span (longest
    chain of batch builds over ``n_threads`` threads plus the merge),
    not the serial wall-clock the single Python process actually spent.
    """

    name = "batched"

    def __init__(
        self, batch_size: int, n_threads: int, sparse: bool = True
    ) -> None:
        self.batch_size = batch_size
        self.n_threads = n_threads
        self.dense = not sparse
        self.kernel = (
            build_node_histogram_sparse if sparse else build_node_histogram_dense
        )

    def build(self, shard, rows, grad, hess):
        result = build_histogram_batched(
            shard,
            rows,
            grad,
            hess,
            batch_size=self.batch_size,
            n_threads=self.n_threads,
            kernel=self.kernel,
        )
        return result.histogram, result.span_seconds

    def __repr__(self) -> str:
        return (
            f"BatchedBuildStrategy(batch_size={self.batch_size}, "
            f"n_threads={self.n_threads}, sparse={not self.dense})"
        )


def resolve_build_strategy(
    config: TrainConfig, *, sparse: bool, batched: bool = False
) -> HistogramBuildStrategy:
    """Choose the build strategy for a fit.

    Args:
        config: Supplies ``batch_size`` / ``n_threads`` for the batched
            strategy.
        sparse: Use the Algorithm 2 kernel (else the dense scan).
        batched: Wrap the kernel in parallel batch construction.
    """
    if batched:
        return BatchedBuildStrategy(
            batch_size=config.batch_size,
            n_threads=config.n_threads,
            sparse=sparse,
        )
    return SparseBuildStrategy() if sparse else DenseBuildStrategy()
