"""Deterministic fault injection + recovery for the simulated PS cluster.

The package splits chaos into four small pieces:

* :mod:`~repro.chaos.plan` — declarative, seedable :class:`FaultPlan`
  (what fails, where, when); pure data, JSON round-trippable.
* :mod:`~repro.chaos.injector` — :class:`FaultInjector`, the
  deterministic interpreter turning a plan into per-occasion decisions.
* :mod:`~repro.chaos.fabric` — :class:`FaultyFabric`, bounded
  retry + exponential backoff around every PS message, charged to
  simulated time.
* :mod:`~repro.chaos.recovery` — :class:`RoundRecovery`,
  checkpoint/rollback-replay for worker crashes.

:class:`ChaosRuntime` bundles them for one training run; the distributed
engine builds one when a ``fault_plan`` is supplied and threads its
fabric into the PS backend and its injector into the growth strategy's
execution sites.

The determinism contract (asserted by ``tests/chaos/``): the same seed,
plan, and cluster shape replay the same faults; and a faulted run that
recovers produces a model **bit-identical** to the fault-free run.
"""

from __future__ import annotations

from ..config import NetworkCost
from .fabric import FAULT_RECOVERY_PHASE, FaultyFabric, RetryPolicy
from .injector import (
    COUNTER_KEYS,
    FaultInjector,
    InjectedCrash,
    OpPlan,
    SiteFault,
)
from .plan import (
    FAULT_KINDS,
    FAULT_POINTS,
    MESSAGE_POINTS,
    SITE_POINTS,
    FaultEvent,
    FaultPlan,
)
from .recovery import Checkpoint, RoundRecovery

__all__ = [
    "COUNTER_KEYS",
    "FAULT_KINDS",
    "FAULT_POINTS",
    "FAULT_RECOVERY_PHASE",
    "MESSAGE_POINTS",
    "SITE_POINTS",
    "ChaosRuntime",
    "Checkpoint",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultyFabric",
    "InjectedCrash",
    "OpPlan",
    "RetryPolicy",
    "RoundRecovery",
    "SiteFault",
]


class ChaosRuntime:
    """One training run's chaos machinery: injector + fabric + policy.

    Args:
        plan: The declarative fault plan.
        clock: The run's ``SimClock``; all fault costs are charged here.
        cost: Network cost model (wasted wire time of failed attempts).
        max_retries: Delivery retry budget (``RetryPolicy.max_retries``).
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        clock,
        cost: NetworkCost | None = None,
        max_retries: int = 3,
    ) -> None:
        self.plan = plan
        self.clock = clock
        self.injector = FaultInjector(plan)
        self.policy = RetryPolicy(max_retries=max_retries)
        self.fabric = FaultyFabric(
            self.injector, clock, self.policy, cost or NetworkCost()
        )

    @property
    def counters(self) -> dict[str, int]:
        """Live injected/retried/recovered counters (``COUNTER_KEYS``)."""
        return self.injector.counters

    def begin_round(self, round_index: int) -> None:
        """Arm the injector for a boosting round (or its replay)."""
        self.injector.begin_round(round_index)

    def site_fault(self, point: str, *, worker: int, timer=None) -> SiteFault:
        """Fire an execution-site fault point for one worker occasion.

        Straggler delays are added to the worker's lane on ``timer``
        (so the phase barrier charges them like any slow worker) or, with
        no timer, directly to the clock.  Crashes raise
        :class:`InjectedCrash` for the recovery layer to catch.
        """
        fault = self.injector.site_fault(point, worker=worker)
        if fault.delay_seconds > 0.0:
            if timer is not None:
                timer.add(worker, fault.delay_seconds)
            else:
                self.clock.advance_compute(
                    fault.delay_seconds, phase=FAULT_RECOVERY_PHASE
                )
        if fault.crash_worker is not None:
            raise InjectedCrash(
                fault.crash_worker, point, self.injector.round_index
            )
        return fault
