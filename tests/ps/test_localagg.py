"""Unit tests for the local aggregator and the windowed push seam.

The regression class at the bottom is the PR's seam fix: retried
windowed pushes must dedupe per *(round, window)* — the old per-round
token scheme silently dropped the second window of a round that touched
the same node row.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PSError
from repro.ps import (
    LocalAggregator,
    ParameterServerGroup,
    SlabLayout,
    SparseSlab,
    fold_slabs,
)

LAYOUT = SlabLayout(4, 3, np.zeros(4, dtype=np.int64))


def make_slab(value, col_lo=0, col_hi=4, features=(0, 1)):
    present = np.asarray(sorted(f for f in features if col_lo <= f < col_hi))
    values = np.full(
        (present.size, LAYOUT.feature_width), float(value), dtype=np.float64
    )
    return SparseSlab(
        col_lo=col_lo,
        col_hi=col_hi,
        features=present,
        values=values,
        sum_g=float(value),
        sum_h=float(value) / 2.0,
    )


def make_group(n_servers=2, fabric=None):
    group = ParameterServerGroup(n_servers, fabric=fabric)
    group.register(
        "grad_hist",
        LAYOUT.row_length,
        align=LAYOUT.feature_width,
        layout=LAYOUT,
    )
    return group


class TestFoldSlabs:
    def test_rejects_stripe_mismatch(self):
        with pytest.raises(PSError, match="different column stripes"):
            fold_slabs(make_slab(1.0), make_slab(1.0, col_lo=2), LAYOUT)

    def test_union_of_presence(self):
        folded = fold_slabs(
            make_slab(1.0, features=(0,)),
            make_slab(2.0, features=(2,)),
            LAYOUT,
        )
        np.testing.assert_array_equal(folded.features, [0, 2])
        assert folded.sum_g == 3.0

    def test_fold_is_associative_on_the_wire(self):
        a, b, c = make_slab(1.5), make_slab(-0.25), make_slab(7.0)
        left = make_group()
        left.push_slab(
            "grad_hist", 0, fold_slabs(fold_slabs(a, b, LAYOUT), c, LAYOUT)
        )
        right = make_group()
        right.push_slab(
            "grad_hist", 0, fold_slabs(a, fold_slabs(b, c, LAYOUT), LAYOUT)
        )
        np.testing.assert_array_equal(
            left.pull_row("grad_hist", 0)[0], right.pull_row("grad_hist", 0)[0]
        )


class TestLocalAggregator:
    def test_rejects_bad_window(self):
        with pytest.raises(PSError, match="window"):
            LocalAggregator(0, LAYOUT)

    def test_fills_at_window_and_folds_same_node(self):
        aggregator = LocalAggregator(3, LAYOUT)
        assert not aggregator.add(0, make_slab(1.0))
        assert not aggregator.add(0, make_slab(2.0))
        assert aggregator.add(1, make_slab(5.0))
        assert aggregator.full
        index, entries = aggregator.drain()
        assert index == 0
        assert [node for node, _slab in entries] == [0, 1]
        folded = dict(entries)[0]
        assert folded.sum_g == 3.0
        assert aggregator.deltas_folded == 1
        assert aggregator.pending == 0

    def test_empty_drain_consumes_no_window_index(self):
        aggregator = LocalAggregator(2, LAYOUT)
        index, entries = aggregator.drain()
        assert (index, entries) == (0, [])
        aggregator.add(0, make_slab(1.0))
        index, entries = aggregator.drain()
        assert index == 0
        assert len(entries) == 1
        assert aggregator.windows_flushed == 1

    def test_reset_rewinds_window_numbering(self):
        aggregator = LocalAggregator(1, LAYOUT)
        aggregator.add(0, make_slab(1.0))
        aggregator.drain()
        aggregator.add(0, make_slab(1.0))
        aggregator.reset()
        assert aggregator.pending == 0
        assert aggregator.windows_flushed == 0
        aggregator.add(3, make_slab(2.0))
        index, entries = aggregator.drain()
        assert index == 0
        assert [node for node, _slab in entries] == [3]


class TestPushWindow:
    def test_routes_and_matches_per_slab_pushes(self):
        direct = make_group()
        direct.push_slab("grad_hist", 0, make_slab(1.0))
        direct.push_slab("grad_hist", 2, make_slab(-3.0, features=(1, 3)))

        windowed = make_group()
        stats = windowed.push_window(
            "grad_hist",
            [(0, make_slab(1.0)), (2, make_slab(-3.0, features=(1, 3)))],
        )
        assert stats.messages >= 1
        for row in (0, 2):
            np.testing.assert_array_equal(
                direct.pull_row("grad_hist", row)[0],
                windowed.pull_row("grad_hist", row)[0],
            )

    def test_bills_row_id_plus_wire_bytes(self):
        group = make_group(n_servers=1)
        slab = make_slab(1.0)
        stats = group.push_window("grad_hist", [(0, slab), (1, slab)])
        expected = 2 * (4 + slab.wire_bytes_for(0, LAYOUT.n_features))
        assert stats.bytes_up == expected
        assert group.servers[0].bytes_received == expected

    def test_requires_layout(self):
        group = ParameterServerGroup(1)
        group.register("plain", 8)
        with pytest.raises(PSError, match="slab layout"):
            group.push_window("plain", [(0, make_slab(1.0))])

    def test_fabric_requires_seq(self):
        class NullFabric:
            def deliver(self, kind, send, server=None, worker=None,
                        payload_bytes=0):
                return send()

        group = make_group(fabric=NullFabric())
        with pytest.raises(PSError, match="seq token"):
            group.push_window("grad_hist", [(0, make_slab(1.0))])

    def test_duplicate_window_delivery_dedupes(self):
        group = make_group(n_servers=1)
        entries = [(0, make_slab(4.0))]
        group.push_window("grad_hist", entries, seq=(0, 0, 0))
        once = group.pull_row("grad_hist", 0)[0].copy()
        group.push_window("grad_hist", entries, seq=(0, 0, 0))
        np.testing.assert_array_equal(group.pull_row("grad_hist", 0)[0], once)
        assert group.servers[0].duplicate_pushes >= 1

    def test_clear_row_frees_window_tokens(self):
        group = make_group(n_servers=1)
        entries = [(0, make_slab(4.0))]
        group.push_window("grad_hist", entries, seq=(0, 0, 0))
        group.clear_row("grad_hist", 0)
        group.push_window("grad_hist", entries, seq=(0, 0, 0))
        once = make_group(n_servers=1)
        once.push_window("grad_hist", entries, seq=(0, 0, 0))
        np.testing.assert_array_equal(
            group.pull_row("grad_hist", 0)[0],
            once.pull_row("grad_hist", 0)[0],
        )


class TestWindowScopedSeqTokens:
    """The satellite fix: seq tokens carry the window index.

    A worker that flushes two aggregation windows in the same round can
    touch the same node row twice.  Under the pre-windowing token scheme
    — ``(round, worker)``, one token per round — the second window is
    indistinguishable from a retry of the first and gets dropped on the
    floor.  The extended ``(round, window, worker)`` token keeps retry
    dedupe while letting every window of a round land.
    """

    def test_old_round_scoped_tokens_lose_the_second_window(self):
        group = make_group(n_servers=1)
        group.push_window("grad_hist", [(0, make_slab(1.0))], seq=(7, 0))
        group.push_window("grad_hist", [(0, make_slab(2.0))], seq=(7, 0))
        both = make_group(n_servers=1)
        both.push_slab("grad_hist", 0, make_slab(1.0))
        both.push_slab("grad_hist", 0, make_slab(2.0))
        with pytest.raises(AssertionError):
            np.testing.assert_array_equal(
                group.pull_row("grad_hist", 0)[0],
                both.pull_row("grad_hist", 0)[0],
            )
        assert group.servers[0].duplicate_pushes >= 1

    def test_window_scoped_tokens_apply_every_window_once(self):
        group = make_group(n_servers=1)
        # Two windows of round 7 touch row 0; a retry of window 0 lands
        # in between, exactly as a fault fabric would redeliver it.
        group.push_window("grad_hist", [(0, make_slab(1.0))], seq=(7, 0, 0))
        group.push_window("grad_hist", [(0, make_slab(1.0))], seq=(7, 0, 0))
        group.push_window("grad_hist", [(0, make_slab(2.0))], seq=(7, 1, 0))
        both = make_group(n_servers=1)
        both.push_slab("grad_hist", 0, make_slab(1.0))
        both.push_slab("grad_hist", 0, make_slab(2.0))
        np.testing.assert_array_equal(
            group.pull_row("grad_hist", 0)[0],
            both.pull_row("grad_hist", 0)[0],
        )
        assert group.servers[0].duplicate_pushes == 1

    def test_distinct_workers_never_collide(self):
        group = make_group(n_servers=1)
        group.push_window("grad_hist", [(0, make_slab(1.0))], seq=(7, 0, 0))
        group.push_window("grad_hist", [(0, make_slab(2.0))], seq=(7, 0, 1))
        both = make_group(n_servers=1)
        both.push_slab("grad_hist", 0, make_slab(1.0))
        both.push_slab("grad_hist", 0, make_slab(2.0))
        np.testing.assert_array_equal(
            group.pull_row("grad_hist", 0)[0],
            both.pull_row("grad_hist", 0)[0],
        )
        assert group.servers[0].duplicate_pushes == 0
