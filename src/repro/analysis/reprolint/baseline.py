"""Baseline/diff mode: fail on *new* findings only.

Tightening a rule must never block an unrelated PR on pre-existing
debt.  The committed baseline records every unsuppressed finding the
tree already carries as a *fingerprint multiset* — ``(rule, path,
message)`` with a count, deliberately excluding line numbers so a
finding that merely moves (an edit above it) stays recognized.  A CI
run with ``--baseline`` then fails only when the current tree has more
findings of some fingerprint than the baseline allows.

The baseline file is JSON, sorted, and stable, so regenerating it on an
unchanged tree is a no-op diff::

    python -m repro.analysis src --write-baseline .reprolint-baseline.json
    python -m repro.analysis src --baseline .reprolint-baseline.json
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from .core import Finding, LintResult

__all__ = [
    "BASELINE_VERSION",
    "fingerprint",
    "load_baseline",
    "new_findings",
    "write_baseline",
]

BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> tuple[str, str, str]:
    """The identity a finding keeps across unrelated edits.

    Line and column are excluded on purpose: code moving *around* a
    finding must not make it read as new.
    """
    return (finding.rule, finding.path, finding.message)


def _counts(findings: list[Finding]) -> dict[tuple[str, str, str], int]:
    counts: dict[tuple[str, str, str], int] = {}
    for finding in findings:
        key = fingerprint(finding)
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(result: LintResult, path: str | Path) -> int:
    """Record the run's unsuppressed findings; returns how many."""
    counts = _counts(result.unsuppressed)
    document = {
        "version": BASELINE_VERSION,
        "tool": "reprolint",
        "entries": [
            {"rule": rule, "path": rel, "message": message, "count": count}
            for (rule, rel, message), count in sorted(counts.items())
        ],
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(result.unsuppressed)


def load_baseline(path: str | Path) -> Mapping[tuple[str, str, str], int]:
    """Parse a baseline file back into its fingerprint multiset."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    counts: dict[tuple[str, str, str], int] = {}
    for entry in document.get("entries", []):
        key = (entry["rule"], entry["path"], entry["message"])
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def new_findings(
    result: LintResult, baseline: Mapping[tuple[str, str, str], int]
) -> list[Finding]:
    """Unsuppressed findings beyond the baseline's allowance.

    Findings are matched to the allowance in engine order (path, line,
    col, rule), so when a fingerprint's count grows from N to N+1 the
    *last* occurrence is the one reported — deterministic either way.
    """
    remaining = dict(baseline)
    fresh: list[Finding] = []
    for finding in result.unsuppressed:
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh
