"""The distributed training engine (Section 4.4's worker execution).

One engine drives all five systems through the per-layer core operation:

1. partition the data over workers (DATA PARTITIONING),
2. propose split candidates from quantile summaries (CREATE_SKETCH /
   PULL_SKETCH),
3. per tree: compute gradients (NEW_TREE), build per-worker node
   histograms (BUILD_HISTOGRAM), aggregate + find splits through the
   system's backend (FIND_SPLIT), split the trees via the node-to-
   instance indexes (SPLIT_TREE), and
4. emit the model (FINISH).

Time model: the workers' *computation* is measured for real (wall-clock
of the actual numpy kernels, with a barrier charging the slowest worker
of each phase), *communication* is charged by the cost model with real
byte counts, and *loading* is the shard bytes over a configured ingest
rate.  See DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..boosting.losses import get_loss
from ..boosting.metrics import error_rate
from ..boosting.model import GBDTModel
from ..cluster.costmodel import CostParams
from ..cluster.simclock import SimClock
from ..config import ClusterConfig, TrainConfig
from ..datasets.dataset import Dataset
from ..datasets.partition import partition_rows
from ..errors import TrainingError
from ..histogram.binned import BinnedShard
from ..histogram.builder import (
    build_node_histogram_dense,
    build_node_histogram_sparse,
)
from ..histogram.index import NodeInstanceIndex
from ..histogram.parallel import build_histogram_batched
from ..ps.master import Master, WorkerPhase
from ..sketch.candidates import (
    CandidateSet,
    propose_candidates,
    propose_candidates_from_sketches,
)
from ..sketch.quantile import GKSketch, sketch_columns
from ..tree.split import leaf_weight
from ..tree.tree import RegressionTree
from ..utils.rng import spawn_rng
from ..utils.timing import TimeBreakdown
from .backends import AggregationBackend, general_ps_push_time, make_backend
from ..boosting.gbdt import sample_features

#: Simulated HDFS ingest rate for the loading phase (bytes/second).
LOADING_BYTES_PER_SECOND = 200e6

#: Approximate wire bytes per quantile-sketch entry (value + rank bounds).
SKETCH_ENTRY_BYTES = 16


@dataclass
class RoundRecord:
    """Per-tree telemetry of a distributed run.

    ``sim_elapsed`` is the cluster time (loading + computation barriers +
    simulated communication) when the tree finished — the x-axis of the
    paper's convergence plots.
    """

    tree_index: int
    sim_elapsed: float
    train_loss: float
    train_error: float


@dataclass
class DistributedResult:
    """Outcome of a distributed training run.

    Attributes:
        model: The trained ensemble (identical across workers).
        system: Backend name.
        breakdown: loading / computation / communication decomposition.
        rounds: Per-tree convergence telemetry.
        phases: Simulated seconds charged per worker phase
            (CREATE_SKETCH ... SPLIT_TREE) — the Table 3 style view.
        sim_seconds: Total simulated cluster time.
    """

    model: GBDTModel
    system: str
    breakdown: TimeBreakdown
    rounds: list[RoundRecord] = field(default_factory=list)
    phases: dict[str, float] = field(default_factory=dict)

    @property
    def sim_seconds(self) -> float:
        """Total simulated cluster time."""
        return self.breakdown.total


class DistributedGBDT:
    """Distributed GBDT trainer over the simulated cluster.

    Args:
        system: One of ``BACKEND_NAMES`` ("dimboost", "xgboost", ...).
        cluster: Cluster shape and network constants.
        config: GBDT hyper-parameters.
        sparse_build: Override the backend's histogram-build mode (the
            paper's baselines scan densely; DimBoost uses Algorithm 2).
        use_index: Node-to-instance index on workers (ablation hook).
        batched_build: Parallel batch construction with the simulated
            span accounting (Section 5.2).
        distributed_sketch: Build candidates from per-worker GK sketches
            merged on the PS (the faithful CREATE_SKETCH path) instead of
            exact global quantiles.  Exact is the default because both
            paths yield near-identical candidates and the exact path keeps
            the cross-system tree-identity guarantee.
        backend_kwargs: Extra arguments for the backend (e.g. DimBoost's
            ``two_phase=False`` ablation).
    """

    def __init__(
        self,
        system: str = "dimboost",
        cluster: ClusterConfig | None = None,
        config: TrainConfig | None = None,
        sparse_build: bool | None = None,
        use_index: bool = True,
        batched_build: bool = False,
        distributed_sketch: bool = False,
        **backend_kwargs,
    ) -> None:
        self.system = system
        self.cluster = cluster if cluster is not None else ClusterConfig()
        self.config = config if config is not None else TrainConfig()
        self._sparse_build_override = sparse_build
        self.use_index = use_index
        self.batched_build = batched_build
        self.distributed_sketch = distributed_sketch
        self._backend_kwargs = backend_kwargs
        self.cost = CostParams(
            self.cluster.network.alpha,
            self.cluster.network.beta,
            self.cluster.network.gamma,
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def fit(self, train: Dataset) -> DistributedResult:
        """Train on ``train`` and return the model plus time accounting."""
        config = self.config
        cluster = self.cluster
        loss = get_loss(config.loss)
        clock = SimClock()
        master = Master(cluster.n_workers)

        # DATA PARTITIONING + loading: shard bytes over the ingest rate,
        # workers load in parallel (max shard).
        shards_data = partition_rows(train, cluster.n_workers)
        loading = max(s.X.nbytes for s in shards_data) / LOADING_BYTES_PER_SECOND

        # CREATE_SKETCH / PULL_SKETCH.
        for wid in range(cluster.n_workers):
            master.enter_phase(wid, WorkerPhase.CREATE_SKETCH)
        candidates = self._propose_candidates(train, shards_data, clock)
        for wid in range(cluster.n_workers):
            master.enter_phase(wid, WorkerPhase.PULL_SKETCH)

        backend = make_backend(
            self.system, cluster, config, candidates, **self._backend_kwargs
        )
        sparse_build = (
            not backend.dense_build
            if self._sparse_build_override is None
            else self._sparse_build_override
        )

        # Pre-bucketize every shard (part of loading/ETL; measured).
        started = time.perf_counter()
        shards = [BinnedShard(s.X, candidates) for s in shards_data]
        loading += (time.perf_counter() - started) / cluster.n_workers

        labels = [np.asarray(s.y, dtype=np.float64) for s in shards_data]
        weights = [
            s.weights if s.weights is not None else None for s in shards_data
        ]
        base = loss.base_score(train.y, train.weights)
        raws = [np.full(s.n_rows, base, dtype=np.float64) for s in shards]

        trees: list[RegressionTree] = []
        rounds: list[RoundRecord] = []

        for t in range(config.n_trees):
            backend.begin_tree(t)
            for wid in range(cluster.n_workers):
                master.enter_phase(wid, WorkerPhase.NEW_TREE)
            grads, hesses = self._compute_gradients(
                loss, labels, raws, weights, clock
            )
            # The leader samples features and publishes the mask via the
            # PS (tiny; every worker derives the same mask from the seed).
            mask = sample_features(
                train.n_features,
                config.feature_sample_ratio,
                spawn_rng(config.seed, "feature_sampling", t),
            )

            tree, leaf_assignments = self._grow_tree(
                backend, shards, grads, hesses, mask, clock, master
            )
            trees.append(tree)
            backend.end_tree(clock)

            for wid in range(cluster.n_workers):
                raws[wid] += tree.weight[leaf_assignments[wid]]
            rounds.append(
                self._record_round(t, loss, labels, raws, loading, clock)
            )

        for wid in range(cluster.n_workers):
            master.enter_phase(wid, WorkerPhase.FINISH)

        model = GBDTModel(
            trees=trees,
            base_score=base,
            loss_name=config.loss,
            n_features=train.n_features,
        )
        breakdown = TimeBreakdown(
            loading=loading,
            computation=clock.computation,
            communication=clock.communication,
        )
        return DistributedResult(
            model=model,
            system=self.system,
            breakdown=breakdown,
            rounds=rounds,
            phases=clock.by_phase(),
        )

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------

    def _apply_speeds(self, per_worker_seconds: list[float]) -> list[float]:
        """Scale measured per-worker compute by each worker's speed."""
        return [
            seconds / self.cluster.speed_of(wid)
            for wid, seconds in enumerate(per_worker_seconds)
        ]

    def _propose_candidates(
        self,
        train: Dataset,
        shards_data: list[Dataset],
        clock: SimClock,
    ) -> CandidateSet:
        """Candidate proposal with sketch communication charged.

        The wire cost is the same for both paths: every worker pushes one
        summary per feature and pulls the merged ones back.
        """
        config = self.config
        cluster = self.cluster

        def charge_sketch_comm(sketch_bytes: float) -> None:
            clock.advance_comm(
                general_ps_push_time(
                    cluster.n_workers,
                    cluster.n_servers,
                    sketch_bytes,
                    self.cost,
                    cluster.colocated,
                ),
                phase="CREATE_SKETCH",
            )
            # Pull of the merged sketches by every worker.
            clock.advance_comm(
                cluster.n_servers * self.cost.alpha
                + sketch_bytes * self.cost.beta,
                phase="PULL_SKETCH",
            )

        if not self.distributed_sketch:
            # Exact path: charge the modelled summary size per feature.
            entries_per_sketch = int(1.0 / (2.0 * config.sketch_eps)) + 2
            charge_sketch_comm(
                train.n_features * entries_per_sketch * SKETCH_ENTRY_BYTES
            )
            return propose_candidates(train.X, config.n_split_candidates)

        per_worker_seconds = []
        per_worker_bytes = []
        merged: list[GKSketch] | None = None
        for shard in shards_data:
            started = time.perf_counter()
            local = sketch_columns(
                shard.X.indptr,
                shard.X.indices,
                shard.X.data,
                shard.n_features,
                eps=config.sketch_eps / 2.0,
            )
            per_worker_seconds.append(time.perf_counter() - started)
            per_worker_bytes.append(sum(sk.wire_bytes for sk in local))
            if merged is None:
                merged = local
            else:
                merged = [a.merge(b) for a, b in zip(merged, local)]
        # Real wire accounting: what a worker's serialized sketches weigh.
        charge_sketch_comm(max(per_worker_bytes))
        clock.barrier(self._apply_speeds(per_worker_seconds), phase="CREATE_SKETCH")
        assert merged is not None  # n_workers >= 1
        return propose_candidates_from_sketches(merged, config.n_split_candidates)

    def _compute_gradients(
        self,
        loss,
        labels: list[np.ndarray],
        raws: list[np.ndarray],
        weights: list[np.ndarray | None],
        clock: SimClock,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        grads, hesses, seconds = [], [], []
        for y, raw, w in zip(labels, raws, weights):
            started = time.perf_counter()
            g, h = loss.gradients(y, raw, w)
            grads.append(g)
            hesses.append(h)
            seconds.append(time.perf_counter() - started)
        clock.barrier(self._apply_speeds(seconds), phase="NEW_TREE")
        return grads, hesses

    def _build_node_histograms(
        self,
        shards: list[BinnedShard],
        indexes: list[NodeInstanceIndex],
        grads: list[np.ndarray],
        hesses: list[np.ndarray],
        node: int,
        sparse_build: bool,
        per_worker_seconds: list[float],
    ) -> list[np.ndarray]:
        """One node's local histograms, feature-major flat, per worker."""
        config = self.config
        flats = []
        for wid, shard in enumerate(shards):
            rows = indexes[wid].rows_of(node)
            started = time.perf_counter()
            if self.batched_build:
                kernel = (
                    build_node_histogram_sparse
                    if sparse_build
                    else build_node_histogram_dense
                )
                result = build_histogram_batched(
                    shard,
                    rows,
                    grads[wid],
                    hesses[wid],
                    batch_size=config.batch_size,
                    n_threads=config.n_threads,
                    kernel=kernel,
                )
                histogram = result.histogram
                # Charge the simulated multi-core span, not the serial wall.
                per_worker_seconds[wid] += result.span_seconds
            elif sparse_build:
                histogram = build_node_histogram_sparse(
                    shard, rows, grads[wid], hesses[wid]
                )
                per_worker_seconds[wid] += time.perf_counter() - started
            else:
                histogram = build_node_histogram_dense(
                    shard, rows, grads[wid], hesses[wid]
                )
                per_worker_seconds[wid] += time.perf_counter() - started
            flats.append(histogram.to_flat_feature_major())
        return flats

    def _grow_tree(
        self,
        backend: AggregationBackend,
        shards: list[BinnedShard],
        grads: list[np.ndarray],
        hesses: list[np.ndarray],
        feature_valid: np.ndarray,
        clock: SimClock,
        master: Master,
    ) -> tuple[RegressionTree, list[np.ndarray]]:
        config = self.config
        cluster = self.cluster
        sparse_build = (
            not backend.dense_build
            if self._sparse_build_override is None
            else self._sparse_build_override
        )
        tree = RegressionTree(config.max_depth)
        indexes = [
            NodeInstanceIndex(shard.n_rows, config.max_nodes) for shard in shards
        ]

        # Root totals: each worker contributes two floats (tiny push).
        total_g = float(sum(g.sum() for g in grads))
        total_h = float(sum(h.sum() for h in hesses))
        clock.advance_comm(
            general_ps_push_time(
                cluster.n_workers, cluster.n_servers, 16, self.cost, cluster.colocated
            ),
            phase="NEW_TREE",
        )
        node_totals: dict[int, tuple[float, float]] = {0: (total_g, total_h)}

        active = [0]
        eta = config.learning_rate
        for depth in range(1, config.max_depth + 1):
            if not active:
                break
            if depth == config.max_depth:
                for node in active:
                    g, h = node_totals[node]
                    tree.set_leaf(
                        node,
                        eta * leaf_weight(g, h, config.reg_lambda),
                        cover=float(h),
                    )
                active = []
                break

            # BUILD_HISTOGRAM for the whole layer.
            for wid in range(cluster.n_workers):
                master.enter_phase(wid, WorkerPhase.BUILD_HISTOGRAM)
            per_worker_seconds = [0.0] * cluster.n_workers
            for node in active:
                flats = self._build_node_histograms(
                    shards,
                    indexes,
                    grads,
                    hesses,
                    node,
                    sparse_build,
                    per_worker_seconds,
                )
                backend.aggregate_node(node, flats, clock)
            clock.barrier(
                self._apply_speeds(per_worker_seconds), phase="BUILD_HISTOGRAM"
            )

            # FIND_SPLIT.
            for wid in range(cluster.n_workers):
                master.enter_phase(wid, WorkerPhase.FIND_SPLIT)
            decisions = backend.find_splits(active, feature_valid, clock)

            # SPLIT_TREE.
            for wid in range(cluster.n_workers):
                master.enter_phase(wid, WorkerPhase.SPLIT_TREE)
            next_active: list[int] = []
            split_seconds = [0.0] * cluster.n_workers
            for node in active:
                decision = decisions.get(node)
                if decision is None or decision.gain <= config.min_split_gain:
                    g, h = node_totals[node]
                    tree.set_leaf(
                        node,
                        eta * leaf_weight(g, h, config.reg_lambda),
                        cover=float(h),
                    )
                    continue
                left, right = tree.set_split(
                    node,
                    decision.feature,
                    decision.value,
                    gain=decision.gain,
                    cover=decision.total_hess,
                )
                node_totals[left] = (decision.left_grad, decision.left_hess)
                node_totals[right] = (decision.right_grad, decision.right_hess)
                for wid, shard in enumerate(shards):
                    rows = indexes[wid].rows_of(node)
                    started = time.perf_counter()
                    goes_left = shard.split_mask(
                        rows, decision.feature, decision.bucket
                    )
                    indexes[wid].split(node, goes_left)
                    split_seconds[wid] += time.perf_counter() - started
                next_active.extend((left, right))
            clock.barrier(self._apply_speeds(split_seconds), phase="SPLIT_TREE")
            active = next_active

        # Leaf assignment per worker from its index (free predictions).
        leaf_assignments = []
        for wid, shard in enumerate(shards):
            assignment = np.zeros(shard.n_rows, dtype=np.int64)
            for node in range(tree.max_nodes):
                if tree.is_leaf(node) and indexes[wid].has_node(node):
                    assignment[indexes[wid].rows_of(node)] = node
            leaf_assignments.append(assignment)
        return tree, leaf_assignments

    def _record_round(
        self,
        t: int,
        loss,
        labels: list[np.ndarray],
        raws: list[np.ndarray],
        loading: float,
        clock: SimClock,
    ) -> RoundRecord:
        """Global train loss/error (observability only; not charged)."""
        y_all = np.concatenate(labels)
        raw_all = np.concatenate(raws)
        if loss.name == "logistic":
            err = error_rate(y_all, loss.transform(raw_all))
        else:
            err = loss.loss(y_all, raw_all)
        return RoundRecord(
            tree_index=t,
            sim_elapsed=loading + clock.time,
            train_loss=loss.loss(y_all, raw_all),
            train_error=err,
        )


def train_distributed(
    system: str,
    train: Dataset,
    cluster: ClusterConfig | None = None,
    config: TrainConfig | None = None,
    **kwargs,
) -> DistributedResult:
    """One-call convenience: build the trainer and fit.

    Example::

        result = train_distributed("dimboost", dataset,
                                   ClusterConfig(n_workers=8, n_servers=8))
        print(result.sim_seconds, result.breakdown.as_dict())
    """
    trainer = DistributedGBDT(system, cluster, config, **kwargs)
    return trainer.fit(train)
