"""Table 5 — impact of feature dimension on test error.

The paper trains on prefix subsets Gender-10K / -100K / -330K and finds
more features mean lower test error (0.3014 / 0.2714 / 0.2514).  The
synthetic generator spreads informative features over the whole index
range, so prefixes carry proportional signal; the shape to reproduce is
*monotonically decreasing test error with more features*.
"""

from __future__ import annotations

import pytest

from repro import GBDT, TrainConfig
from repro.boosting import error_rate
from repro.datasets import gender_like, train_test_split

from conftest import bench_scale


def test_table5_feature_dimension(benchmark, report):
    scale = bench_scale()
    data = gender_like(scale=0.3 * scale, seed=0)
    config = TrainConfig(
        n_trees=15, max_depth=6, n_split_candidates=20, learning_rate=0.2
    )
    fractions = (0.03, 0.3, 1.0)  # the paper's 10K : 100K : 330K ratio

    def run():
        rows = []
        for fraction in fractions:
            m = max(64, int(data.n_features * fraction))
            subset = data.first_features(m)
            train, test = train_test_split(subset, test_fraction=0.1, seed=0)
            model = GBDT(config).fit(train)
            err = error_rate(test.y, model.predict(test.X))
            rows.append([f"gender-like-{m}", m, err])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report.add_table(
        "Table 5: impact of feature dimension on test error",
        ["dataset", "# features", "test error"],
        rows,
        notes="feature prefixes of one gender-like dataset, same protocol",
    )
    errors = [row[2] for row in rows]
    # Paper shape: more features -> lower error.
    assert errors[0] > errors[-1]
    assert errors[1] >= errors[-1] - 0.01
