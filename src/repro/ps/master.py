"""The master role: phase synchronization and health bookkeeping.

Section 4.2: "The master supervises workers and servers with periodical
health checking.  It also controls the synchronization between workers to
assure algorithmic correctness."  Section 4.4 adds the rule the barrier
enforces: "one worker cannot proceed until all workers have finished the
current phase."

The simulated cluster executes workers one after another, so the barrier
here is a correctness *assertion* rather than a blocking primitive: a
worker entering a phase out of lockstep raises :class:`TrainingError`
immediately instead of deadlocking silently.
"""

from __future__ import annotations

from enum import Enum

from ..errors import TrainingError


class WorkerPhase(Enum):
    """The seven phases of worker execution (Section 4.4, Figure 7)."""

    CREATE_SKETCH = "CREATE_SKETCH"
    PULL_SKETCH = "PULL_SKETCH"
    NEW_TREE = "NEW_TREE"
    BUILD_HISTOGRAM = "BUILD_HISTOGRAM"
    FIND_SPLIT = "FIND_SPLIT"
    SPLIT_TREE = "SPLIT_TREE"
    FINISH = "FINISH"


#: Phases a worker may legally move to from each phase.
_ALLOWED_NEXT: dict[WorkerPhase, frozenset[WorkerPhase]] = {
    WorkerPhase.CREATE_SKETCH: frozenset({WorkerPhase.PULL_SKETCH}),
    WorkerPhase.PULL_SKETCH: frozenset({WorkerPhase.NEW_TREE}),
    # Depth-1 trees skip BUILD/FIND/SPLIT entirely, hopping straight to
    # the next tree (or FINISH).
    WorkerPhase.NEW_TREE: frozenset(
        {WorkerPhase.BUILD_HISTOGRAM, WorkerPhase.NEW_TREE, WorkerPhase.FINISH}
    ),
    WorkerPhase.BUILD_HISTOGRAM: frozenset({WorkerPhase.FIND_SPLIT}),
    WorkerPhase.FIND_SPLIT: frozenset({WorkerPhase.SPLIT_TREE}),
    WorkerPhase.SPLIT_TREE: frozenset(
        {WorkerPhase.BUILD_HISTOGRAM, WorkerPhase.NEW_TREE, WorkerPhase.FINISH}
    ),
    WorkerPhase.FINISH: frozenset(),
}


class Master:
    """Phase-lockstep coordinator for ``n_workers`` workers.

    One worker (id 0 by convention, matching the paper's "leader worker")
    is designated leader.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise TrainingError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self._phase: list[WorkerPhase | None] = [None] * n_workers
        self._barriers_passed = 0
        self._health_beats: list[int] = [0] * n_workers

    @property
    def leader_id(self) -> int:
        """The leader worker's id."""
        return 0

    @property
    def barriers_passed(self) -> int:
        """Number of completed barriers (one per phase transition)."""
        return self._barriers_passed

    def _check_worker(self, worker_id: int) -> None:
        if not 0 <= worker_id < self.n_workers:
            raise TrainingError(
                f"worker {worker_id} out of range [0, {self.n_workers})"
            )

    def phase_of(self, worker_id: int) -> WorkerPhase | None:
        """Current phase of a worker (None before CREATE_SKETCH)."""
        self._check_worker(worker_id)
        return self._phase[worker_id]

    def enter_phase(self, worker_id: int, phase: WorkerPhase) -> None:
        """Record that ``worker_id`` starts ``phase``; validates lockstep.

        Raises:
            TrainingError: If the transition is illegal or the worker is
                ahead of a peer by more than one phase (barrier violation).
        """
        self._check_worker(worker_id)
        current = self._phase[worker_id]
        if current is None:
            if phase is not WorkerPhase.CREATE_SKETCH:
                raise TrainingError(
                    f"worker {worker_id} must start in CREATE_SKETCH, "
                    f"tried {phase.value}"
                )
        elif phase not in _ALLOWED_NEXT[current]:
            raise TrainingError(
                f"worker {worker_id}: illegal transition "
                f"{current.value} -> {phase.value}"
            )
        # Barrier check: every peer must be either still in this worker's
        # current phase (not yet at the barrier) or already in the target
        # phase (passed it) — anything else means lockstep was broken.
        for other_id, other in enumerate(self._phase):
            if other_id == worker_id:
                continue
            if other is not current and other is not phase:
                raise TrainingError(
                    f"barrier violation: worker {worker_id} entering "
                    f"{phase.value} while worker {other_id} is in "
                    f"{other.value if other else 'None'}"
                )
        self._phase[worker_id] = phase
        self._health_beats[worker_id] += 1
        if all(p is phase for p in self._phase):
            self._barriers_passed += 1

    def enter_all(self, phase: WorkerPhase) -> None:
        """Move every worker through the barrier into ``phase`` in id order.

        The simulated cluster executes workers sequentially, so a phase
        transition is always "all workers, one after another"; this is
        the single entry point the runtime's phase stages use.
        """
        for worker_id in range(self.n_workers):
            self.enter_phase(worker_id, phase)

    def health_report(self) -> dict[int, int]:
        """Heartbeat counts per worker (the periodic health check)."""
        return {wid: beats for wid, beats in enumerate(self._health_beats)}

    def all_finished(self) -> bool:
        """Whether every worker reached FINISH."""
        return all(p is WorkerPhase.FINISH for p in self._phase)
