"""Regression tree structure and prediction.

Nodes live in heap layout (node ``i`` has children ``2i+1`` / ``2i+2``),
matching the paper's state array (Section 6.2) and the PS GradHist row
indexing (Section 4.3).  Zero-valued (absent) sparse features are real
zeros: an instance missing feature ``f`` is routed by ``0 < value``, the
same rule the zero bucket gives the histograms — so training statistics
and prediction agree exactly.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..datasets.sparse import CSRMatrix
from ..errors import TrainingError

#: Marker in ``split_feature`` for a node that is a leaf.
LEAF = -1
#: Marker in ``split_feature`` for a slot not present in the tree.
UNUSED = -2


class RegressionTree:
    """A binary regression tree over ``max_nodes`` heap slots.

    Attributes:
        split_feature: int32 per slot; feature id, or LEAF / UNUSED.
        split_value: float64 threshold per internal node.
        weight: float64 leaf weight per leaf node.
    """

    def __init__(self, max_depth: int) -> None:
        if max_depth < 1:
            raise TrainingError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.max_nodes = (1 << max_depth) - 1
        self.split_feature = np.full(self.max_nodes, UNUSED, dtype=np.int32)
        self.split_value = np.zeros(self.max_nodes, dtype=np.float64)
        self.weight = np.zeros(self.max_nodes, dtype=np.float64)
        # Optional per-node statistics (model introspection): the split's
        # objective gain and the node's hessian mass ("cover").
        self.gain = np.zeros(self.max_nodes, dtype=np.float64)
        self.cover = np.zeros(self.max_nodes, dtype=np.float64)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _check_slot(self, node: int) -> None:
        if not 0 <= node < self.max_nodes:
            raise TrainingError(f"node {node} out of range [0, {self.max_nodes})")

    def set_split(
        self,
        node: int,
        feature: int,
        value: float,
        gain: float = 0.0,
        cover: float = 0.0,
    ) -> tuple[int, int]:
        """Make ``node`` internal, splitting on ``x[feature] < value``.

        ``gain`` and ``cover`` (the split's objective gain and the node's
        hessian mass) are optional introspection statistics.

        Returns the (left, right) child slot ids.
        """
        self._check_slot(node)
        left, right = 2 * node + 1, 2 * node + 2
        if right >= self.max_nodes:
            raise TrainingError(
                f"node {node} is at maximal depth; cannot split"
            )
        if feature < 0:
            raise TrainingError(f"split feature must be >= 0, got {feature}")
        self.split_feature[node] = feature
        self.split_value[node] = value
        self.gain[node] = gain
        self.cover[node] = cover
        return left, right

    def set_leaf(self, node: int, weight: float, cover: float = 0.0) -> None:
        """Make ``node`` a leaf predicting ``weight``."""
        self._check_slot(node)
        self.split_feature[node] = LEAF
        self.weight[node] = weight
        self.cover[node] = cover

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` is a leaf."""
        self._check_slot(node)
        return self.split_feature[node] == LEAF

    def is_internal(self, node: int) -> bool:
        """Whether ``node`` is an internal (split) node."""
        self._check_slot(node)
        return self.split_feature[node] >= 0

    @property
    def n_leaves(self) -> int:
        """Number of leaves L (the regularizer's leaf count)."""
        return int(np.sum(self.split_feature == LEAF))

    @property
    def n_internal(self) -> int:
        """Number of split nodes."""
        return int(np.sum(self.split_feature >= 0))

    def depth_of(self, node: int) -> int:
        """1-based depth of a heap slot (root = 1)."""
        self._check_slot(node)
        return (node + 1).bit_length()

    def validate(self) -> None:
        """Check structural invariants; raises TrainingError on violation."""
        if self.split_feature[0] == UNUSED:
            raise TrainingError("tree has no root")
        for node in range(self.max_nodes):
            state = self.split_feature[node]
            left, right = 2 * node + 1, 2 * node + 2
            if state >= 0:
                if right >= self.max_nodes:
                    raise TrainingError(f"internal node {node} beyond max depth")
                if self.split_feature[left] == UNUSED or (
                    self.split_feature[right] == UNUSED
                ):
                    raise TrainingError(f"internal node {node} missing children")
            elif state == LEAF and node != 0:
                parent = (node - 1) // 2
                if self.split_feature[parent] < 0:
                    raise TrainingError(f"leaf {node} has a non-internal parent")

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------

    def leaf_of(self, X: CSRMatrix) -> np.ndarray:
        """The leaf slot each instance reaches (vectorized, level by level).

        This is the reference per-tree path; batch scoring goes through
        the compiled :class:`~repro.inference.flat.FlatEnsemble`.  The
        ``to_csc()`` call below is memoized on the matrix, so repeated
        per-tree calls convert once, not once per tree.
        """
        if self.split_feature[0] == UNUSED:
            raise TrainingError("tree has no root")
        n = X.n_rows
        node_of = np.zeros(n, dtype=np.int64)
        col_indptr, row_indices, values = X.to_csc()
        dense_col = np.zeros(n, dtype=np.float64)
        for _ in range(self.max_depth - 1):
            feats = self.split_feature[node_of]
            active = feats >= 0
            if not active.any():
                break
            goes_left = np.zeros(n, dtype=bool)
            for f in np.unique(feats[active]):
                if f >= X.n_cols:
                    # Feature beyond this matrix's width: value is 0.
                    col_rows = np.empty(0, dtype=np.int64)
                else:
                    lo, hi = col_indptr[f], col_indptr[f + 1]
                    col_rows = row_indices[lo:hi]
                    dense_col[col_rows] = values[lo:hi]
                at_f = active & (feats == f)
                goes_left[at_f] = (
                    dense_col[at_f] < self.split_value[node_of[at_f]]
                )
                if f < X.n_cols:
                    dense_col[col_rows] = 0.0
            node_of = np.where(
                active,
                np.where(goes_left, 2 * node_of + 1, 2 * node_of + 2),
                node_of,
            )
        return node_of

    def predict(self, X: CSRMatrix) -> np.ndarray:
        """Leaf weight of every instance."""
        return self.weight[self.leaf_of(X)]

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready structure (per-node stats included when present)."""
        nodes = []
        for node in range(self.max_nodes):
            state = int(self.split_feature[node])
            if state == UNUSED:
                continue
            entry: dict[str, Any] = {"id": node}
            if state == LEAF:
                entry["weight"] = float(self.weight[node])
            else:
                entry["feature"] = state
                entry["value"] = float(self.split_value[node])
                if self.gain[node]:
                    entry["gain"] = float(self.gain[node])
            if self.cover[node]:
                entry["cover"] = float(self.cover[node])
            nodes.append(entry)
        return {"max_depth": self.max_depth, "nodes": nodes}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RegressionTree":
        """Inverse of :meth:`to_dict`."""
        tree = cls(int(payload["max_depth"]))
        for entry in payload["nodes"]:
            node = int(entry["id"])
            if "feature" in entry:
                tree.set_split(
                    node,
                    int(entry["feature"]),
                    float(entry["value"]),
                    gain=float(entry.get("gain", 0.0)),
                    cover=float(entry.get("cover", 0.0)),
                )
            else:
                tree.set_leaf(
                    node,
                    float(entry["weight"]),
                    cover=float(entry.get("cover", 0.0)),
                )
        return tree

    def to_text(self) -> str:
        """Human-readable dump, one indented line per node.

        Example::

            0: [f213 < 0.4948] gain=113.14 cover=900.0
              1: [f85 < 0.8253] gain=12.3 cover=450.2
                3: leaf=0.2926
                ...
        """
        if self.split_feature[0] == UNUSED:
            raise TrainingError("tree has no root")
        lines: list[str] = []

        def visit(node: int, depth: int) -> None:
            indent = "  " * depth
            state = int(self.split_feature[node])
            if state == LEAF:
                line = f"{indent}{node}: leaf={self.weight[node]:.6g}"
                if self.cover[node]:
                    line += f" cover={self.cover[node]:.6g}"
                lines.append(line)
                return
            line = (
                f"{indent}{node}: [f{state} < {self.split_value[node]:.6g}]"
            )
            if self.gain[node]:
                line += f" gain={self.gain[node]:.6g}"
            if self.cover[node]:
                line += f" cover={self.cover[node]:.6g}"
            lines.append(line)
            visit(2 * node + 1, depth + 1)
            visit(2 * node + 2, depth + 1)

        visit(0, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"RegressionTree(max_depth={self.max_depth}, "
            f"internal={self.n_internal}, leaves={self.n_leaves})"
        )
