"""Command-line interface.

Subcommands cover the workflow end to end::

    python -m repro.cli generate --preset rcv1 --scale 0.3 --out data.libsvm
    python -m repro.cli train data.libsvm --model model.json --trees 20
    python -m repro.cli predict model.json data.libsvm --out scores.txt
    python -m repro.cli evaluate model.json data.libsvm
    python -m repro.cli compare data.libsvm --workers 8
    python -m repro.cli serve model.json --port 7736

``train`` runs the single-machine trainer by default; pass ``--system``
to train on the simulated cluster with any of the five system backends.
``compare`` races all systems on one dataset and prints the Figure 12
style summary.  ``serve`` hosts a model over NDJSON/TCP with async
micro-batching and hot-swap (see ``docs/serving.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

import numpy as np

from . import __version__
from .boosting import GBDTModel, accuracy, auc, error_rate, logloss, rmse
from .boosting.gbdt import GBDT
from .chaos import FaultPlan
from .config import ClusterConfig, TrainConfig
from .datasets import (
    GridSpec,
    gender_like,
    load_libsvm,
    low_dim_like,
    rcv1_like,
    save_libsvm,
    synthesis_like,
    train_test_split,
)
from .distributed import BACKEND_NAMES, train_distributed
from .errors import ReproError
from .runtime.hooks import TrainerCallback

_PRESETS: dict[str, Callable] = {
    "rcv1": rcv1_like,
    "synthesis": synthesis_like,
    "gender": gender_like,
    "lowdim": low_dim_like,
}


class _ProgressCallback(TrainerCallback):
    """Prints one line per boosting round as training runs.

    Works on both trainers: hooks the same spine the single-machine and
    distributed engines dispatch to, and reads whichever telemetry
    record the trainer emits.
    """

    def on_fit_start(self, n_trees: int) -> None:
        self._n_trees = n_trees

    def on_tree_end(self, tree_index: int, record: object) -> None:
        loss = getattr(record, "train_loss", float("nan"))
        elapsed = getattr(
            record, "sim_elapsed", getattr(record, "elapsed_seconds", 0.0)
        )
        print(
            f"  tree {tree_index + 1}/{self._n_trees}: "
            f"train loss {loss:.5f} ({elapsed:.2f}s)"
        )


def _add_inference_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch-rows",
        type=int,
        default=None,
        help="rows per scoring block (default: cache-sized)",
    )
    parser.add_argument(
        "--n-processes",
        type=int,
        default=1,
        help="worker processes for scoring (1 = serial)",
    )


def _add_train_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trees", type=int, default=20, help="boosting rounds T")
    parser.add_argument("--depth", type=int, default=6, help="maximal tree depth d")
    parser.add_argument(
        "--bins", type=int, default=20, help="split candidates per feature K"
    )
    parser.add_argument(
        "--learning-rate", type=float, default=0.1, help="shrinkage eta"
    )
    parser.add_argument(
        "--loss", choices=("logistic", "squared"), default="logistic"
    )
    parser.add_argument(
        "--feature-sample", type=float, default=1.0, help="per-tree feature ratio"
    )
    parser.add_argument("--reg-lambda", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--parallel-backend",
        choices=("simulated", "threads", "process"),
        default="simulated",
        help="how histogram builds execute (process = real multicore)",
    )
    parser.add_argument(
        "--n-processes",
        type=int,
        default=1,
        help="worker processes for --parallel-backend process",
    )


def _config_from_args(args: argparse.Namespace, bits: int = 0) -> TrainConfig:
    return TrainConfig(
        n_trees=args.trees,
        max_depth=args.depth,
        n_split_candidates=args.bins,
        learning_rate=args.learning_rate,
        loss=args.loss,
        feature_sample_ratio=args.feature_sample,
        reg_lambda=args.reg_lambda,
        compression_bits=bits,
        compression_block=getattr(args, "compression_block", 0),
        parallel_backend=args.parallel_backend,
        n_processes=args.n_processes,
        seed=args.seed,
        max_retries=getattr(args, "max_retries", 3),
        checkpoint_every=getattr(args, "checkpoint_every", 1),
        agg_window=getattr(args, "agg_window", 1),
        staleness=getattr(args, "staleness", 0),
    )


def cmd_generate(args: argparse.Namespace) -> int:
    factory = _PRESETS[args.preset]
    data = factory(scale=args.scale, seed=args.seed)
    save_libsvm(data, args.out)
    print(
        f"wrote {args.out}: {data.n_instances} instances, "
        f"{data.n_features} features, avg nnz {data.avg_nnz:.1f}"
    )
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    data = load_libsvm(args.data, n_features=args.n_features)
    print(f"loaded {data}")
    config = _config_from_args(args, bits=args.compression_bits)
    callbacks = [_ProgressCallback()] if args.progress else []
    fault_plan = None
    if args.fault_plan:
        if not args.system:
            print(
                "error: --fault-plan requires --system (fault injection "
                "targets the simulated cluster)",
                file=sys.stderr,
            )
            return 2
        fault_plan = FaultPlan.load(args.fault_plan)
        label = fault_plan.name or args.fault_plan
        print(f"fault plan {label}: {len(fault_plan)} event(s)")
    if args.grid and not args.system:
        print(
            "error: --grid requires --system (block sharding targets the "
            "simulated cluster)",
            file=sys.stderr,
        )
        return 2
    if (
        args.agg_window > 1 or args.staleness > 0 or args.speed_jitter > 0
    ) and not args.system:
        print(
            "error: --agg-window/--staleness/--speed-jitter require "
            "--system (local aggregation, bounded staleness, and speed "
            "jitter target the simulated cluster)",
            file=sys.stderr,
        )
        return 2
    if args.system:
        grid = None
        if args.grid:
            spec = GridSpec.parse(args.grid)
            grid = (spec.rows, spec.cols)
            if args.workers != spec.n_blocks:
                print(
                    f"--grid {spec} implies {spec.n_blocks} workers; "
                    f"overriding --workers {args.workers}"
                )
        cluster = ClusterConfig(
            n_workers=grid[0] * grid[1] if grid else args.workers,
            n_servers=args.servers,
            grid=grid,
            speed_jitter=args.speed_jitter,
        )
        result = train_distributed(
            args.system,
            data,
            cluster,
            config,
            callbacks=callbacks,
            fault_plan=fault_plan,
        )
        model = result.model
        print(
            f"trained with {args.system} on {cluster.n_workers} simulated "
            f"workers ({cluster.grid_shape[0]}x{cluster.grid_shape[1]} grid) "
            f"in {result.sim_seconds:.3f} simulated seconds "
            f"({result.breakdown.as_dict()})"
        )
        if result.faults is not None:
            print(f"fault report: {result.faults['totals']}")
    else:
        trainer = GBDT(config)
        model = trainer.fit(data, callbacks=callbacks)
        last = trainer.history[-1]
        print(
            f"trained {config.n_trees} trees in {last.elapsed_seconds:.2f}s; "
            f"final train loss {last.train_loss:.4f}"
        )
    model.save(args.model)
    print(f"model saved to {args.model}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    model = GBDTModel.load(args.model)
    data = load_libsvm(args.data, n_features=model.n_features)
    predictions = model.predict(
        data.X, batch_rows=args.batch_rows, n_processes=args.n_processes
    )
    if args.out:
        np.savetxt(args.out, predictions, fmt="%.6g")
        print(f"wrote {len(predictions)} predictions to {args.out}")
    else:
        for value in predictions:
            print(f"{value:.6g}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    model = GBDTModel.load(args.model)
    data = load_libsvm(args.data, n_features=model.n_features)
    predictions = model.predict(
        data.X, batch_rows=args.batch_rows, n_processes=args.n_processes
    )
    if model.loss_name == "logistic":
        print(f"error rate: {error_rate(data.y, predictions):.4f}")
        print(f"accuracy:   {accuracy(data.y, predictions):.4f}")
        print(f"logloss:    {logloss(data.y, predictions):.4f}")
        try:
            print(f"AUC:        {auc(data.y, predictions):.4f}")
        except ReproError:
            pass  # single-class file: AUC undefined
    else:
        print(f"rmse:       {rmse(data.y, predictions):.4f}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    data = load_libsvm(args.data, n_features=args.n_features)
    train, test = train_test_split(data, test_fraction=0.1, seed=args.seed)
    config = _config_from_args(args)
    cluster = ClusterConfig(n_workers=args.workers, n_servers=args.workers)
    systems = args.systems.split(",") if args.systems else list(BACKEND_NAMES)
    print(
        f"{'system':14s} {'sim s':>8s} {'load':>7s} {'compute':>8s} "
        f"{'comm':>7s} {'test err':>9s}"
    )
    times = {}
    for system in systems:
        result = train_distributed(system, train, cluster, config)
        err = error_rate(test.y, result.model.predict(test.X))
        b = result.breakdown
        times[system] = result.sim_seconds
        print(
            f"{system:14s} {b.total:8.3f} {b.loading:7.3f} "
            f"{b.computation:8.3f} {b.communication:7.3f} {err:9.4f}"
        )
    if "dimboost" in times:
        for system, t in times.items():
            if system != "dimboost":
                print(f"dimboost speedup vs {system}: {t / times['dimboost']:.2f}x")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serving import (
        ModelStore,
        ServingConfig,
        ServingRuntime,
        ServingServer,
    )

    serving_config = ServingConfig(
        max_batch_rows=args.max_batch_rows,
        max_batch_delay_ms=args.max_batch_delay_ms,
        queue_limit=args.queue_limit,
        deadline_ms=args.deadline_ms,
        n_processes=args.n_processes,
        batch_rows=args.batch_rows,
    )
    store = ModelStore(
        n_processes=serving_config.n_processes,
        batch_rows=serving_config.batch_rows,
    )
    version = store.load(args.model)
    print(
        f"loaded {args.model}: version {version.version}, "
        f"{version.model.n_trees} trees, {version.n_features} features"
    )

    async def run() -> None:
        runtime = ServingRuntime(store, serving_config)
        server = ServingServer(runtime, host=args.host, port=args.port)
        await server.start()
        print(
            f"serving NDJSON on {server.host}:{server.port} "
            f"(max_batch_rows={serving_config.max_batch_rows}, "
            f"max_batch_delay_ms={serving_config.max_batch_delay_ms})",
            flush=True,
        )
        await server.serve_until_shutdown()
        print("shutdown requested; stopped")

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; stopped")
    finally:
        store.close()
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.reprolint.cli import main as reprolint_main

    forwarded: list[str] = list(args.paths)
    forwarded += ["--format", args.format]
    if args.output is not None:
        forwarded += ["--output", args.output]
    if args.select is not None:
        forwarded += ["--select", args.select]
    if args.ignore is not None:
        forwarded += ["--ignore", args.ignore]
    if args.show_suppressed:
        forwarded.append("--show-suppressed")
    if args.baseline is not None:
        forwarded += ["--baseline", args.baseline]
    if args.write_baseline is not None:
        forwarded += ["--write-baseline", args.write_baseline]
    return reprolint_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DimBoost reproduction: distributed GBDT for "
        "high-dimensional sparse data",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a dataset to LibSVM")
    gen.add_argument("--preset", choices=sorted(_PRESETS), default="rcv1")
    gen.add_argument("--scale", type=float, default=0.2)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=cmd_generate)

    train = sub.add_parser("train", help="train a GBDT model")
    train.add_argument("data", help="LibSVM training file")
    train.add_argument("--model", required=True, help="output model JSON")
    train.add_argument("--n-features", type=int, default=None)
    train.add_argument(
        "--system",
        choices=BACKEND_NAMES,
        default=None,
        help="train distributed with this system (default: single machine)",
    )
    train.add_argument("--workers", type=int, default=4)
    train.add_argument("--servers", type=int, default=4)
    train.add_argument(
        "--grid",
        default=None,
        metavar="ROWSxCOLS",
        help="2-D worker grid for block-distributed training, e.g. 2x4 "
        "(requires --system; implies --workers rows*cols; composes with "
        "--compression-bits: slab pushes ride the codec)",
    )
    train.add_argument("--compression-bits", type=int, default=0)
    train.add_argument(
        "--compression-block",
        type=int,
        default=0,
        help="values per fixed-point scale of the histogram codec "
        "(0 = one scale per per-feature g/h histogram)",
    )
    train.add_argument(
        "--progress",
        action="store_true",
        help="print per-tree progress while training",
    )
    train.add_argument(
        "--fault-plan",
        default=None,
        metavar="PATH",
        help="JSON FaultPlan to inject while training (requires --system)",
    )
    train.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="delivery retries / rollback attempts before ClusterFaultError",
    )
    train.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="boosting rounds between recovery checkpoints",
    )
    train.add_argument(
        "--agg-window",
        type=int,
        default=1,
        help="histogram deltas folded locally into one windowed PS push "
        "(requires --system; 1 = push per node; any value is "
        "bit-identical)",
    )
    train.add_argument(
        "--staleness",
        type=int,
        default=0,
        help="bounded-staleness bound S: workers may run up to S tree "
        "layers ahead (requires --system; 0 = synchronous barriers, "
        "bit-identical to default)",
    )
    train.add_argument(
        "--speed-jitter",
        type=float,
        default=0.0,
        help="per-layer worker speed noise amplitude in [0, 1) — rotating "
        "stragglers in the simulated clock (requires --system; clock "
        "accounting only, model bits unchanged)",
    )
    _add_train_options(train)
    train.set_defaults(func=cmd_train)

    predict = sub.add_parser("predict", help="score a LibSVM file")
    predict.add_argument("model")
    predict.add_argument("data")
    predict.add_argument("--out", default=None)
    _add_inference_options(predict)
    predict.set_defaults(func=cmd_predict)

    evaluate = sub.add_parser("evaluate", help="evaluate a model on a file")
    evaluate.add_argument("model")
    evaluate.add_argument("data")
    _add_inference_options(evaluate)
    evaluate.set_defaults(func=cmd_evaluate)

    compare = sub.add_parser(
        "compare", help="race the five systems on one dataset"
    )
    compare.add_argument("data")
    compare.add_argument("--n-features", type=int, default=None)
    compare.add_argument("--workers", type=int, default=4)
    compare.add_argument(
        "--systems", default=None, help="comma-separated subset of systems"
    )
    _add_train_options(compare)
    compare.set_defaults(func=cmd_compare)

    serve = sub.add_parser(
        "serve",
        help="serve a model over NDJSON/TCP with async micro-batching",
    )
    serve.add_argument("model", help="model JSON (the engine's FINISH artifact)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = pick a free one)"
    )
    serve.add_argument(
        "--max-batch-rows",
        type=int,
        default=256,
        help="flush a micro-batch at this many rows (1 = no coalescing)",
    )
    serve.add_argument(
        "--max-batch-delay-ms",
        type=float,
        default=2.0,
        help="flush an under-filled batch after this delay (p99 bound)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=1024,
        help="admission bound; requests beyond it are rejected explicitly",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline; expired requests are shed "
        "at dequeue instead of scored late",
    )
    _add_inference_options(serve)
    serve.set_defaults(func=cmd_serve)

    lint = sub.add_parser(
        "lint",
        help="run reprolint, the repo's invariant checker (RP001-RP010)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files/dirs (default: src)"
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--output", default=None, metavar="FILE")
    lint.add_argument("--select", default=None, metavar="CODES")
    lint.add_argument("--ignore", default=None, metavar="CODES")
    lint.add_argument("--show-suppressed", action="store_true")
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="fail only on findings not recorded in this baseline JSON",
    )
    lint.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record current findings to FILE and exit 0",
    )
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
