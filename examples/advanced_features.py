#!/usr/bin/env python
"""Advanced library features beyond the paper's evaluation.

Demonstrates, in one run: per-instance weights, eval sets with early
stopping, feature importance, histogram-subtraction growth, multiclass
softmax boosting, and disk-backed datasets.

Run:
    python examples/advanced_features.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import GBDT, TrainConfig
from repro.boosting import (
    MulticlassGBDT,
    gain_importance,
    split_count_importance,
    top_features,
)
from repro.datasets import (
    CSRMatrix,
    Dataset,
    StorageLevel,
    load_dataset,
    rcv1_like,
    save_dataset,
    train_test_split,
)


def early_stopping_demo() -> None:
    print("=== eval set + early stopping ===")
    data = rcv1_like(scale=0.25, seed=5)
    train, valid = train_test_split(data, test_fraction=0.2, seed=5)
    config = TrainConfig(n_trees=60, max_depth=6, learning_rate=0.8)
    trainer = GBDT(config)
    model = trainer.fit(train, eval_set=valid, early_stopping_rounds=4)
    print(f"requested {config.n_trees} trees; ran {len(trainer.history)} "
          f"rounds; kept {model.n_trees} (best eval round)")
    for record in trainer.history[:: max(1, len(trainer.history) // 5)]:
        print(
            f"  round {record.tree_index:2d}: train={record.train_loss:.4f} "
            f"eval={record.eval_loss:.4f}"
        )


def importance_demo() -> None:
    print("\n=== feature importance ===")
    rng = np.random.default_rng(0)
    dense = (rng.random((800, 20)) < 0.5) * rng.random((800, 20))
    y = ((dense[:, 4] + dense[:, 11]) > 0.6).astype(np.float32)
    data = Dataset(CSRMatrix.from_dense(dense.astype(np.float32)), y, "planted")
    model = GBDT(TrainConfig(n_trees=8, max_depth=4, learning_rate=0.4)).fit(data)
    counts = split_count_importance(model)
    gains = gain_importance(model, data)
    print("planted signal features: 4 and 11")
    print("top by split count:", top_features(counts, k=3))
    print("top by gain:       ", top_features(gains, k=3))


def subtraction_demo() -> None:
    print("\n=== histogram subtraction ===")
    data = rcv1_like(scale=0.3, seed=6)
    config = TrainConfig(n_trees=4, max_depth=7, learning_rate=0.3)
    plain = GBDT(config)
    plain.fit(data)
    fast = GBDT(config, subtraction=True)
    fast.fit(data)
    print(
        f"histograms built: {sum(r.n_histograms for r in plain.history)} -> "
        f"{sum(r.n_histograms for r in fast.history)} "
        f"(same final loss: {plain.history[-1].train_loss:.6f} vs "
        f"{fast.history[-1].train_loss:.6f})"
    )


def weighted_demo() -> None:
    print("\n=== per-instance weights ===")
    data = rcv1_like(scale=0.2, seed=7)
    # Up-weight the positive class 3x (cost-sensitive training).
    weights = np.where(data.y > 0.5, 3.0, 1.0)
    weighted = Dataset(data.X, data.y, "weighted", weights)
    config = TrainConfig(n_trees=10, max_depth=5, learning_rate=0.3)
    plain_model = GBDT(config).fit(data)
    weighted_model = GBDT(config).fit(weighted)
    plain_rate = float(np.mean(plain_model.predict(data.X) >= 0.5))
    weighted_rate = float(np.mean(weighted_model.predict(data.X) >= 0.5))
    print(
        f"fraction predicted positive: {plain_rate:.3f} (unweighted) -> "
        f"{weighted_rate:.3f} (positives up-weighted 3x)"
    )


def multiclass_demo() -> None:
    print("\n=== multiclass softmax ===")
    rng = np.random.default_rng(1)
    n = 1200
    dense = (rng.random((n, 15)) < 0.5) * rng.random((n, 15))
    groups = np.stack(
        [dense[:, :5].sum(axis=1), dense[:, 5:10].sum(axis=1),
         dense[:, 10:].sum(axis=1)],
        axis=1,
    )
    y = np.argmax(groups, axis=1).astype(np.float32)
    data = Dataset(CSRMatrix.from_dense(dense.astype(np.float32)), y, "3class")
    trainer = MulticlassGBDT(
        n_classes=3, config=TrainConfig(n_trees=8, max_depth=4, learning_rate=0.4)
    )
    model = trainer.fit(data)
    error = float(np.mean(model.predict_labels(data.X) != data.y))
    print(f"3-class train error after 8 rounds: {error:.4f} (chance ~0.67)")


def storage_demo() -> None:
    print("\n=== storage levels ===")
    data = rcv1_like(scale=0.2, seed=8)
    path = Path(tempfile.mkdtemp()) / "dataset.npz"
    save_dataset(data, path)
    print(f"saved {path.stat().st_size / 1e6:.2f} MB")
    for level in StorageLevel:
        loaded = load_dataset(path, level)
        assert loaded.X.nnz == data.X.nnz
        print(f"  {level.value:16s} loaded ok ({loaded.n_instances} rows)")


def main() -> None:
    early_stopping_demo()
    importance_demo()
    subtraction_demo()
    weighted_demo()
    multiclass_demo()
    storage_demo()


if __name__ == "__main__":
    main()
