"""Histogram build strategies: how one node histogram gets constructed.

Replaces the boolean tangle (``sparse_build`` / ``batched_build`` /
``dense_build`` flags threaded through trainers and backends) with one
strategy object chosen once per fit:

* :class:`DenseBuildStrategy` — the traditional full scan over all
  ``M * K`` buckets (what the baseline systems do, Section 5.1).
* :class:`SparseBuildStrategy` — Algorithm 2's sparsity-aware build,
  O(zN + M) (DimBoost's C3 optimization).
* :class:`BatchedBuildStrategy` — Section 5.2's parallel batch
  construction over either kernel; by default it reports the simulated
  multi-core *span*, with ``real_threads=True`` it actually runs the
  batches on a thread pool (GIL-capped) and reports real wall-clock.
* :class:`ProcessParallelBuildStrategy` — Section 5.2 on real cores: a
  persistent process pool building batches against a zero-copy
  :class:`~repro.histogram.shared.SharedShard`, merged in the driver.

Every strategy returns ``(histogram, seconds)`` where ``seconds`` is
what a simulated worker should be charged for the build — measured
wall-clock for the serial and real-parallel paths, simulated span for
the span-accounting batched one — so the engine's phase barrier code no
longer branches on how the histogram was built.

Strategies that hold resources (the process pool, shared-memory
segments, pooled buffers) release them in :meth:`close`; trainers that
resolve a strategy themselves close it when the fit ends.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from ..config import TrainConfig
from ..histogram.binned import BinnedShard
from ..histogram.buffers import HistogramBufferPool
from ..histogram.builder import (
    build_node_histogram_dense,
    build_node_histogram_sparse,
)
from ..histogram.histogram import GradientHistogram
from ..histogram.parallel import (
    ParallelBuildResult,
    build_histogram_batched,
    simulate_span,
)
from ..histogram.shared import SharedShard, build_into_slot

__all__ = [
    "HistogramBuildStrategy",
    "DenseBuildStrategy",
    "SparseBuildStrategy",
    "BatchedBuildStrategy",
    "ProcessParallelBuildStrategy",
    "resolve_build_strategy",
]


class HistogramBuildStrategy(ABC):
    """How a worker constructs one node's gradient histogram."""

    #: Short identifier used in logs and reprs.
    name: str = "abstract"
    #: Whether the underlying kernel is the traditional dense scan.
    dense: bool = False

    @abstractmethod
    def build(
        self,
        shard: BinnedShard,
        rows: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
    ) -> tuple[GradientHistogram, float]:
        """Build one node histogram.

        Returns:
            ``(histogram, seconds)`` — the histogram plus the seconds a
            simulated worker is charged for building it.
        """

    def release(self, histogram: GradientHistogram) -> None:
        """Give a consumed histogram's buffers back for reuse.

        Callers that are done with a histogram (e.g. the distributed
        engine after flattening it onto the wire) may hand it back so a
        pooled strategy can recycle the arrays.  No-op by default.  The
        histogram must not be used after release.
        """

    def close(self) -> None:
        """Release held resources (pools, shared memory).  No-op here."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _PooledKernelStrategy(HistogramBuildStrategy):
    """Shared plumbing for the single-kernel strategies."""

    def __init__(self, pool: HistogramBufferPool | None = None) -> None:
        self.pool = pool

    def _out(self, shard: BinnedShard) -> GradientHistogram | None:
        if self.pool is None:
            return None
        return self.pool.acquire(shard.n_features, shard.n_bins)

    def release(self, histogram: GradientHistogram) -> None:
        if self.pool is not None:
            self.pool.release(histogram)

    def close(self) -> None:
        if self.pool is not None:
            self.pool.clear()


class DenseBuildStrategy(_PooledKernelStrategy):
    """Traditional dense scan over every (feature, bucket) pair."""

    name = "dense"
    dense = True

    def build(
        self,
        shard: BinnedShard,
        rows: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
    ) -> tuple[GradientHistogram, float]:
        started = time.perf_counter()
        histogram = build_node_histogram_dense(
            shard, rows, grad, hess, out=self._out(shard)
        )
        return histogram, time.perf_counter() - started


class SparseBuildStrategy(_PooledKernelStrategy):
    """Algorithm 2: touch only the nonzeros, fold totals into zero bins."""

    name = "sparse"
    dense = False

    def build(
        self,
        shard: BinnedShard,
        rows: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
    ) -> tuple[GradientHistogram, float]:
        started = time.perf_counter()
        histogram = build_node_histogram_sparse(
            shard, rows, grad, hess, out=self._out(shard)
        )
        return histogram, time.perf_counter() - started


class BatchedBuildStrategy(HistogramBuildStrategy):
    """Section 5.2 parallel batch construction over a base kernel.

    With the default ``real_threads=False`` the batches run serially and
    the returned seconds are the simulated multi-core span (longest
    chain of batch builds over ``n_threads`` threads), not the serial
    wall-clock the single Python process actually spent.  With
    ``real_threads=True`` the batches run on a ThreadPoolExecutor and
    the real wall-clock is charged — honest, but GIL-capped.
    """

    name = "batched"

    def __init__(
        self,
        batch_size: int,
        n_threads: int,
        sparse: bool = True,
        real_threads: bool = False,
    ) -> None:
        self.batch_size = batch_size
        self.n_threads = n_threads
        self.dense = not sparse
        self.real_threads = real_threads
        self.kernel = (
            build_node_histogram_sparse if sparse else build_node_histogram_dense
        )
        #: Last build's full telemetry (span, wall, per-batch times).
        self.last_result: ParallelBuildResult | None = None

    def build(
        self,
        shard: BinnedShard,
        rows: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
    ) -> tuple[GradientHistogram, float]:
        result = build_histogram_batched(
            shard,
            rows,
            grad,
            hess,
            batch_size=self.batch_size,
            n_threads=self.n_threads,
            use_real_threads=self.real_threads,
            kernel=self.kernel,
        )
        self.last_result = result
        seconds = result.wall_seconds if self.real_threads else result.span_seconds
        return result.histogram, seconds

    def __repr__(self) -> str:
        return (
            f"BatchedBuildStrategy(batch_size={self.batch_size}, "
            f"n_threads={self.n_threads}, sparse={not self.dense}, "
            f"real_threads={self.real_threads})"
        )


class ProcessParallelBuildStrategy(HistogramBuildStrategy):
    """Real multicore batch construction on a persistent process pool.

    A node's rows are chunked into at most ``n_processes`` contiguous
    tasks; each task builds its chunk's histogram inside a worker
    process, writing into its slot of a shared-memory slab, and the
    driver sums the slots in slot order (deterministic for a fixed
    chunking).  Per-shard data and the per-round gradients live in a
    :class:`~repro.histogram.shared.SharedShard`, so nothing heavy is
    pickled per task.

    Degrades to the sequential kernel — per build for nodes too small to
    be worth the fan-out (fewer than two ``batch_size`` chunks), and
    permanently (with a warning) when process pools are unusable: no
    ``fork`` start method, shared memory unavailable, or a broken pool.

    The returned seconds are the real wall-clock of the fan-out, and
    :attr:`last_result` carries the full telemetry including the
    Section 5.2 simulated span for comparison.
    """

    name = "process"

    def __init__(
        self,
        batch_size: int,
        n_processes: int,
        sparse: bool = True,
        pool: HistogramBufferPool | None = None,
    ) -> None:
        if n_processes < 1:
            raise ValueError(f"n_processes must be >= 1, got {n_processes}")
        self.batch_size = batch_size
        self.n_processes = n_processes
        self.sparse = sparse
        self.dense = not sparse
        self.pool = pool if pool is not None else HistogramBufferPool()
        self.kernel = (
            build_node_histogram_sparse if sparse else build_node_histogram_dense
        )
        self._executor: ProcessPoolExecutor | None = None
        #: id(shard) -> (shard, SharedShard, last grad, last hess).  The
        #: strong references pin the ids, so the identity check on the
        #: cached gradients can never alias a freed array.
        self._shared: dict[int, list] = {}
        self.fallback_reason: str | None = None
        #: Last *pooled* build's telemetry (None until one has run).
        self.last_result: ParallelBuildResult | None = None

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------

    def build(
        self,
        shard: BinnedShard,
        rows: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
    ) -> tuple[GradientHistogram, float]:
        rows = np.asarray(rows, dtype=np.int64)
        n_tasks = min(self.n_processes, -(-len(rows) // self.batch_size))
        if n_tasks < 2 or not self._ensure_executor():
            return self._sequential(shard, rows, grad, hess)
        executor = self._executor
        assert executor is not None  # _ensure_executor() just built it
        try:
            entry = self._entry(shard)
        except (OSError, ValueError) as exc:
            self._disable(f"shared memory unavailable ({exc})")
            return self._sequential(shard, rows, grad, hess)
        self._refresh_gradients(entry, grad, hess)
        shared: SharedShard = entry[1]
        chunks = np.array_split(rows, n_tasks)
        started = time.perf_counter()
        try:
            futures = [
                executor.submit(
                    build_into_slot, shared.manifest, slot, chunk, self.sparse
                )
                for slot, chunk in enumerate(chunks)
            ]
            batch_seconds = [future.result() for future in futures]
        except BrokenProcessPool:
            self._disable("process pool broke")
            return self._sequential(shard, rows, grad, hess)
        histogram = shared.reduce(n_tasks, self.pool)
        wall = time.perf_counter() - started
        self.last_result = ParallelBuildResult(
            histogram=histogram,
            n_batches=n_tasks,
            batch_seconds=tuple(batch_seconds),
            span_seconds=simulate_span(batch_seconds, self.n_processes),
            wall_seconds=wall,
            serial_seconds=sum(batch_seconds),
            backend="process",
        )
        return histogram, wall

    def _sequential(
        self,
        shard: BinnedShard,
        rows: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
    ) -> tuple[GradientHistogram, float]:
        started = time.perf_counter()
        out = self.pool.acquire(shard.n_features, shard.n_bins)
        histogram = self.kernel(shard, rows, grad, hess, out=out)
        return histogram, time.perf_counter() - started

    # ------------------------------------------------------------------
    # resources
    # ------------------------------------------------------------------

    def _ensure_executor(self) -> bool:
        if self._executor is not None:
            return True
        if self.fallback_reason is not None:
            return False
        # fork is required so workers exist cheaply and before/after the
        # pool there is nothing to re-import; on spawn-only platforms the
        # strategy degrades to the sequential kernel.
        if "fork" not in multiprocessing.get_all_start_methods():
            self._disable("fork start method unavailable")
            return False
        try:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_processes,
                mp_context=multiprocessing.get_context("fork"),
            )
        except OSError as exc:  # pragma: no cover - resource exhaustion
            self._disable(f"could not start process pool ({exc})")
            return False
        return True

    def _entry(self, shard: BinnedShard) -> list:
        entry = self._shared.get(id(shard))
        if entry is None:
            shared = SharedShard(shard, n_slots=self.n_processes)
            entry = [shard, shared, None, None]
            self._shared[id(shard)] = entry
        return entry

    def _refresh_gradients(
        self, entry: list, grad: np.ndarray, hess: np.ndarray
    ) -> None:
        """Copy gradients into shared memory only when they changed.

        Trainers pass the same gradient arrays for every node of a tree,
        so an identity check skips the copy on all but the first build of
        each (shard, round).
        """
        if entry[2] is grad and entry[3] is hess:
            return
        entry[1].set_gradients(grad, hess)
        entry[2] = grad
        entry[3] = hess

    def _disable(self, reason: str) -> None:
        self.fallback_reason = reason
        warnings.warn(
            f"process-parallel histogram build disabled: {reason}; "
            "falling back to the sequential kernel",
            RuntimeWarning,
            stacklevel=3,
        )
        self._shutdown()

    def _shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        for entry in self._shared.values():
            entry[1].close()
        self._shared.clear()

    def release(self, histogram: GradientHistogram) -> None:
        self.pool.release(histogram)

    def close(self) -> None:
        """Shut the pool down and unlink every shared-memory segment."""
        self._shutdown()
        self.pool.clear()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self._shutdown()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ProcessParallelBuildStrategy(batch_size={self.batch_size}, "
            f"n_processes={self.n_processes}, sparse={self.sparse}, "
            f"fallback_reason={self.fallback_reason!r})"
        )


def resolve_build_strategy(
    config: TrainConfig,
    *,
    sparse: bool,
    batched: bool = False,
    pool: HistogramBufferPool | None = None,
) -> HistogramBuildStrategy:
    """Choose the build strategy for a fit.

    ``config.parallel_backend`` picks the execution style:

    * ``"simulated"`` (default) — today's serial kernels; ``batched``
      wraps them in Section 5.2 batch construction with span accounting.
    * ``"threads"`` — batch construction on a real thread pool
      (GIL-capped; charged real wall-clock).
    * ``"process"`` — :class:`ProcessParallelBuildStrategy` on
      ``config.n_processes`` real cores (``n_processes=1`` falls back to
      the plain kernel).

    Args:
        config: Supplies ``batch_size`` / ``n_threads`` / ``n_processes``
            / ``parallel_backend``.
        sparse: Use the Algorithm 2 kernel (else the dense scan).
        batched: Wrap the kernel in parallel batch construction (only
            meaningful for the ``"simulated"`` backend).
        pool: Optional buffer pool for strategies that can recycle
            released histograms.
    """
    backend = config.parallel_backend
    if backend == "process" and config.n_processes > 1:
        return ProcessParallelBuildStrategy(
            batch_size=config.batch_size,
            n_processes=config.n_processes,
            sparse=sparse,
            pool=pool,
        )
    if backend == "threads":
        return BatchedBuildStrategy(
            batch_size=config.batch_size,
            n_threads=config.n_threads,
            sparse=sparse,
            real_threads=True,
        )
    if batched:
        return BatchedBuildStrategy(
            batch_size=config.batch_size,
            n_threads=config.n_threads,
            sparse=sparse,
        )
    if sparse:
        return SparseBuildStrategy(pool=pool)
    return DenseBuildStrategy(pool=pool)
