"""Render benchmark results into a Markdown report.

The bench suite writes one JSON file per reproduced table/figure under
``benchmarks/results/``.  This module loads them and renders a single
Markdown document with aligned tables and ASCII bar charts — a
dependency-free replacement for the plots the paper's figures would
need, suitable for committing next to EXPERIMENTS.md.

Usage::

    from repro.analysis.report import render_report
    markdown = render_report("benchmarks/results")

or from the shell::

    python -m repro.analysis.report benchmarks/results > report.md
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path

from ..errors import DataError

#: Width of the ASCII bar chart area in characters.
BAR_WIDTH = 40


@dataclass(frozen=True)
class ResultTable:
    """One reproduced exhibit, as the bench harness saved it."""

    title: str
    header: list[str]
    rows: list[list[object]]
    notes: str

    @classmethod
    def from_file(cls, path: str | os.PathLike[str]) -> "ResultTable":
        """Load one ``benchmarks/results`` JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for key in ("title", "header", "rows"):
            if key not in payload:
                raise DataError(f"{path}: missing key {key!r}")
        return cls(
            title=str(payload["title"]),
            header=list(payload["header"]),
            rows=[list(row) for row in payload["rows"]],
            notes=str(payload.get("notes", "")),
        )

    def numeric_column(self, name: str) -> list[float] | None:
        """Values of a column if every entry is numeric, else None."""
        if name not in self.header:
            return None
        idx = self.header.index(name)
        values = []
        for row in self.rows:
            value = row[idx]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return None
            values.append(float(value))
        return values


def format_cell(value: object) -> str:
    """Human-friendly cell rendering (compact floats)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def markdown_table(table: ResultTable) -> str:
    """One exhibit as a Markdown pipe table."""
    lines = ["| " + " | ".join(table.header) + " |"]
    lines.append("|" + "|".join("---" for _ in table.header) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(format_cell(c) for c in row) + " |")
    return "\n".join(lines)


def ascii_bars(labels: list[str], values: list[float]) -> str:
    """A horizontal ASCII bar chart, one bar per label."""
    if len(labels) != len(values):
        raise DataError("labels and values must have equal length")
    if not values:
        return ""
    peak = max(values)
    if peak <= 0:
        peak = 1.0
    width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(value / peak * BAR_WIDTH)) if value > 0 else ""
        lines.append(f"{label.ljust(width)} |{bar} {format_cell(value)}")
    return "\n".join(lines)


def chart_for(table: ResultTable) -> str | None:
    """Pick a sensible bar chart for an exhibit, if one exists.

    Charts the first numeric column whose header mentions seconds/time
    against the first column (the category labels); skips convergence
    series (they are long and better read from the JSON).
    """
    if "convergence" in table.title.lower() or "—" in table.title:
        return None
    labels = [format_cell(row[0]) for row in table.rows]
    if len(labels) > 12:
        return None
    for name in table.header[1:]:
        lowered = name.lower()
        if "second" in lowered or "time" in lowered:
            values = table.numeric_column(name)
            if values is not None:
                return ascii_bars(labels, values)
    return None


def load_results(results_dir: str | os.PathLike[str]) -> list[ResultTable]:
    """All result tables in a directory, sorted by title."""
    directory = Path(results_dir)
    if not directory.is_dir():
        raise DataError(f"{directory} is not a directory")
    tables = [
        ResultTable.from_file(path) for path in sorted(directory.glob("*.json"))
    ]
    return sorted(tables, key=lambda t: t.title)


def render_report(results_dir: str | os.PathLike[str]) -> str:
    """The full Markdown report for a results directory."""
    tables = load_results(results_dir)
    if not tables:
        raise DataError(f"no result JSONs found in {results_dir}")
    parts = [
        "# Reproduced tables and figures",
        "",
        f"Generated from {len(tables)} result files in `{results_dir}`.",
        "",
    ]
    for table in tables:
        parts.append(f"## {table.title}")
        parts.append("")
        parts.append(markdown_table(table))
        if table.notes:
            parts.append("")
            parts.append(f"*{table.notes}*")
        chart = chart_for(table)
        if chart:
            parts.append("")
            parts.append("```")
            parts.append(chart)
            parts.append("```")
        parts.append("")
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    """CLI: render a results directory to stdout."""
    args = argv if argv is not None else sys.argv[1:]
    results_dir = args[0] if args else "benchmarks/results"
    try:
        sys.stdout.write(render_report(results_dir))
    except DataError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
