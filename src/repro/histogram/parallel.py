"""Parallel batch construction of a single histogram (Section 5.2).

The "cold-start" problem: in the first tree layers there are few nodes,
so node-level parallelism leaves cores idle.  The paper divides a node's
instance range into batches of size ``b``, builds a sub-histogram per
batch on its own thread, and sums the sub-histograms.

Python's GIL caps the real speedup of thread-level numpy work, so this
module reports two numbers:

* the real wall-clock of the (optionally threaded) build, and
* the *span* — the simulated parallel makespan with ``n_threads``
  workers, computed from the measured per-batch times by greedy (LPT-
  free, arrival-order) scheduling.  The simulated cluster charges the
  span, which is what a multi-core Java worker would observe.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import TrainingError
from ..utils.timing import wall_clock
from .binned import BinnedShard
from .builder import build_node_histogram_sparse
from .histogram import GradientHistogram

#: Signature of a per-batch histogram kernel.
BuildKernel = Callable[
    [BinnedShard, np.ndarray, np.ndarray, np.ndarray], GradientHistogram
]


@dataclass(frozen=True)
class ParallelBuildResult:
    """Outcome of a batched histogram build.

    Attributes:
        histogram: The summed histogram (identical to a sequential build).
        n_batches: Number of batches the range was divided into.
        batch_seconds: Measured build time of each batch, indexed by
            batch (batch ``i``'s time is ``batch_seconds[i]`` no matter
            which worker ran it or when it finished).
        span_seconds: Simulated makespan on ``n_threads`` threads.
        wall_seconds: Real elapsed wall-clock of the whole build.
        serial_seconds: Sum of the per-batch times — what one core would
            have spent on the same batches.
        backend: How the batches actually ran: ``"simulated"`` (serial
            loop, span-only accounting), ``"threads"``, or ``"process"``.
    """

    histogram: GradientHistogram
    n_batches: int
    batch_seconds: tuple[float, ...]
    span_seconds: float
    wall_seconds: float
    serial_seconds: float = 0.0
    backend: str = "simulated"

    @property
    def real_speedup(self) -> float:
        """Measured speedup of the parallel build over one core.

        ``serial_seconds / wall_seconds`` — only meaningful for the
        ``"threads"`` / ``"process"`` backends, where the wall-clock is a
        genuinely concurrent run.
        """
        if self.wall_seconds <= 0.0:
            return 1.0
        return self.serial_seconds / self.wall_seconds


def simulate_span(batch_seconds: list[float], n_threads: int) -> float:
    """Makespan of running ``batch_seconds`` jobs on ``n_threads`` threads.

    Jobs are assigned in arrival order to the earliest-free thread — the
    schedule an executor with a shared queue produces.
    """
    if n_threads < 1:
        raise TrainingError(f"n_threads must be >= 1, got {n_threads}")
    free_at = [0.0] * min(n_threads, max(1, len(batch_seconds)))
    heapq.heapify(free_at)
    finish = 0.0
    for cost in batch_seconds:
        start = heapq.heappop(free_at)
        end = start + cost
        finish = max(finish, end)
        heapq.heappush(free_at, end)
    return finish


def build_histogram_batched(
    shard: BinnedShard,
    rows: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    batch_size: int,
    n_threads: int = 1,
    use_real_threads: bool = False,
    kernel: BuildKernel = build_node_histogram_sparse,
) -> ParallelBuildResult:
    """Build one node histogram from batches of its instance range.

    Args:
        shard: Pre-bucketized shard.
        rows: Row ids of the node (from the node-to-instance index).
        grad, hess: Per-shard-row gradients.
        batch_size: Instances per batch ``b`` (paper default 10000).
        n_threads: Thread count ``q`` used for the span account (and for
            the real pool when ``use_real_threads``).
        use_real_threads: Run batches on a ThreadPoolExecutor.  Numpy
            bincount releases the GIL only partially, so the default is
            the sequential loop; outputs are identical either way.
        kernel: Per-batch histogram kernel.

    Returns:
        A :class:`ParallelBuildResult`; ``histogram`` equals the
        sequential single-pass build.
    """
    if batch_size < 1:
        raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
    rows = np.asarray(rows, dtype=np.int64)
    batches = [rows[lo : lo + batch_size] for lo in range(0, len(rows), batch_size)]
    if not batches:
        batches = [rows]

    wall_start = wall_clock()
    # Indexed by batch, not appended in completion order: threads finish
    # in nondeterministic order, and the span account must be reproducible
    # for a fixed seed.
    batch_seconds = [0.0] * len(batches)

    def run_batch(item: tuple[int, np.ndarray]) -> GradientHistogram:
        index, batch = item
        t0 = wall_clock()
        part = kernel(shard, batch, grad, hess)
        batch_seconds[index] = wall_clock() - t0
        return part

    threaded = use_real_threads and len(batches) > 1 and n_threads > 1
    if threaded:
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            parts = list(pool.map(run_batch, enumerate(batches)))
    else:
        parts = [run_batch(item) for item in enumerate(batches)]

    total = parts[0]
    for part in parts[1:]:
        total.add_(part)
    wall_seconds = wall_clock() - wall_start
    return ParallelBuildResult(
        histogram=total,
        n_batches=len(batches),
        batch_seconds=tuple(batch_seconds),
        span_seconds=simulate_span(batch_seconds, n_threads),
        wall_seconds=wall_seconds,
        serial_seconds=sum(batch_seconds),
        backend="threads" if threaded else "simulated",
    )
