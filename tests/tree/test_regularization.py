"""Tests for the regularization knobs end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GBDT, TrainConfig
from repro.tree import LayerwiseGrower


class TestRegLambda:
    def test_larger_lambda_shrinks_leaf_weights(self, small_dataset):
        weak = GBDT(
            TrainConfig(n_trees=1, max_depth=3, reg_lambda=0.1, learning_rate=1.0)
        ).fit(small_dataset)
        strong = GBDT(
            TrainConfig(n_trees=1, max_depth=3, reg_lambda=100.0, learning_rate=1.0)
        ).fit(small_dataset)
        weak_norm = np.abs(weak.trees[0].weight).max()
        strong_norm = np.abs(strong.trees[0].weight).max()
        assert strong_norm < weak_norm


class TestRegGamma:
    def test_gamma_prunes_splits(self, small_shard, small_candidates, rng):
        g = rng.normal(size=small_shard.n_rows)
        h = rng.random(small_shard.n_rows) + 0.1
        free = LayerwiseGrower(
            small_shard, small_candidates, TrainConfig(max_depth=5, reg_gamma=0.0)
        ).grow(g, h)
        taxed = LayerwiseGrower(
            small_shard,
            small_candidates,
            TrainConfig(max_depth=5, reg_gamma=1e3),
        ).grow(g, h)
        assert taxed.tree.n_internal < free.tree.n_internal


class TestMinChildWeight:
    def test_blocks_thin_children(self, small_shard, small_candidates, rng):
        g = rng.normal(size=small_shard.n_rows)
        h = rng.random(small_shard.n_rows) + 0.1
        free = LayerwiseGrower(
            small_shard,
            small_candidates,
            TrainConfig(max_depth=5, min_child_weight=0.0),
        ).grow(g, h)
        floored = LayerwiseGrower(
            small_shard,
            small_candidates,
            TrainConfig(max_depth=5, min_child_weight=h.sum() / 4),
        ).grow(g, h)
        assert floored.tree.n_internal <= free.tree.n_internal

    def test_floor_respected_in_leaf_masses(self, small_shard, small_candidates, rng):
        g = rng.normal(size=small_shard.n_rows)
        h = rng.random(small_shard.n_rows) + 0.1
        floor = 10.0
        grown = LayerwiseGrower(
            small_shard,
            small_candidates,
            TrainConfig(max_depth=4, min_child_weight=floor),
        ).grow(g, h)
        tree = grown.tree
        for node in range(tree.max_nodes):
            if tree.is_leaf(node) and node != 0:
                rows = grown.leaf_of_rows == node
                if rows.any():
                    assert h[rows].sum() >= floor - 1e-9


class TestMinSplitGain:
    def test_threshold_monotone_in_tree_size(self, small_shard, small_candidates, rng):
        g = rng.normal(size=small_shard.n_rows)
        h = rng.random(small_shard.n_rows) + 0.1
        sizes = []
        for threshold in (0.0, 1.0, 100.0):
            grown = LayerwiseGrower(
                small_shard,
                small_candidates,
                TrainConfig(max_depth=5, min_split_gain=threshold),
            ).grow(g, h)
            sizes.append(grown.tree.n_internal)
        assert sizes[0] >= sizes[1] >= sizes[2]


class TestLearningRateInteraction:
    def test_smaller_rate_needs_more_trees(self, small_dataset):
        fast = GBDT(TrainConfig(n_trees=5, max_depth=4, learning_rate=0.5))
        fast.fit(small_dataset)
        slow = GBDT(TrainConfig(n_trees=5, max_depth=4, learning_rate=0.01))
        slow.fit(small_dataset)
        assert fast.history[-1].train_loss < slow.history[-1].train_loss
