"""Known-good RP007 twin: blocking work crosses the executor seam.

``run_in_executor`` receives the kernel/loader as an *argument*, never
calls it on the loop — the structural shape RP007 admits without any
whitelist.  ``await asyncio.sleep`` suspends instead of blocking.
"""

import asyncio


class Runtime:
    def __init__(self, pool, store):
        self.pool = pool
        self.store = store

    async def handle(self, version, batch):
        await asyncio.sleep(0.01)
        loop = asyncio.get_running_loop()
        raw = await loop.run_in_executor(self.pool, version.predict_raw, batch)
        return raw

    async def reload(self, path):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self.pool, self.store.load, path)
