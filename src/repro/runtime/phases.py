"""Phase-stage objects: the Section 4.4 worker phases as runtime seams.

The distributed engine used to interleave three concerns at every phase
boundary: moving all workers through the master's lockstep machine
(``for wid ...: master.enter_phase(...)``), measuring per-worker kernel
wall-clock with ad-hoc ``time.perf_counter()`` pairs, and charging the
simulated clock.  :class:`PhaseRunner` and :class:`PhaseStage` absorb
all three, and additionally publish every stage through the
:mod:`~repro.runtime.hooks` spine so observers see phase boundaries
without the engine knowing about them.

Usage::

    runner = PhaseRunner(callbacks, master=master, clock=clock,
                         cluster=cluster)
    with runner.stage(WorkerPhase.BUILD_HISTOGRAM, tree_index=t) as stage:
        timer = stage.worker_timer()
        for wid in range(n_workers):
            with timer.measure(wid):
                ...numpy kernels...
        stage.barrier(timer)       # charge the slowest (speed-scaled) worker

A stage without master/clock (single-machine trainers) degrades to pure
hook dispatch with wall-clock measurement.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from types import TracebackType
from typing import Iterator, Sequence

from ..cluster.simclock import SimClock
from ..config import ClusterConfig
from ..ps.master import Master, WorkerPhase
from .hooks import CallbackList

__all__ = [
    "PhaseRunner",
    "PhaseStage",
    "StalenessLanes",
    "WorkerTimer",
    "scale_by_speeds",
]


def scale_by_speeds(
    per_worker_seconds: Sequence[float], cluster: ClusterConfig | None
) -> list[float]:
    """Scale measured per-worker compute by each worker's relative speed.

    Models heterogeneous clusters: a half-speed worker takes twice its
    measured time, and the phase barrier then waits for it.
    """
    if cluster is None:
        return list(per_worker_seconds)
    return [
        seconds / cluster.speed_of(wid)
        for wid, seconds in enumerate(per_worker_seconds)
    ]


class WorkerTimer:
    """Accumulates measured compute seconds per simulated worker."""

    def __init__(self, n_workers: int) -> None:
        self.seconds = [0.0] * n_workers

    @contextmanager
    def measure(self, worker_id: int) -> Iterator[None]:
        """Time a block of real kernel work on behalf of one worker."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[worker_id] += time.perf_counter() - started

    def add(self, worker_id: int, seconds: float) -> None:
        """Charge pre-measured (or simulated-span) seconds to a worker."""
        self.seconds[worker_id] += seconds


class StalenessLanes:
    """Deferred per-worker barrier accounting for bounded staleness.

    With ``TrainConfig.staleness == S >= 1``, workers may run up to
    ``S`` layers ahead of the slowest peer, so a layer's compute does
    not cost the cluster ``max(worker seconds)`` immediately — each
    worker keeps its own *lane* of accumulated (speed-scaled) seconds,
    and only when the staleness bound forces a synchronization does the
    cluster wait for the slowest lane.  :meth:`PhaseStage.barrier`
    routes per-worker seconds into the lanes instead of charging the
    clock; :meth:`layer_boundary` counts layers and triggers a
    :meth:`sync` every ``S + 1`` layers; the engine issues a final
    :meth:`sync` at fit end so no lane time is ever dropped.

    The charged time is the slowest lane's per-phase breakdown, which is
    exactly the lower envelope bounded staleness can realize: every
    other worker's lane time overlaps the slowest worker's.
    """

    def __init__(self, n_workers: int, staleness: int) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if staleness < 1:
            raise ValueError(
                f"StalenessLanes needs staleness >= 1, got {staleness}; "
                f"S=0 is the synchronous barrier and uses no lanes"
            )
        self.n_workers = n_workers
        self.staleness = staleness
        self.syncs = 0
        self._lanes = [0.0] * n_workers
        self._by_phase: list[dict[str, float]] = [{} for _ in range(n_workers)]
        self._layers_since_sync = 0

    @property
    def lane_seconds(self) -> list[float]:
        """Accumulated unsynced seconds per worker lane."""
        return list(self._lanes)

    def defer(self, per_worker_seconds: Sequence[float], phase: str) -> None:
        """Accumulate one relaxed barrier's speed-scaled worker seconds."""
        for wid, seconds in enumerate(per_worker_seconds):
            self._lanes[wid] += seconds
            bucket = self._by_phase[wid]
            bucket[phase] = bucket.get(phase, 0.0) + seconds

    def layer_boundary(self, clock: SimClock) -> float:
        """Note one finished tree layer; sync once drift would exceed S."""
        self._layers_since_sync += 1
        if self._layers_since_sync > self.staleness:
            return self.sync(clock)
        return 0.0

    def sync(self, clock: SimClock) -> float:
        """Charge the slowest lane's breakdown and empty all lanes."""
        self._layers_since_sync = 0
        if not any(self._lanes):
            return 0.0
        slowest = max(range(self.n_workers), key=self._lanes.__getitem__)
        charged = self._lanes[slowest]
        for phase, seconds in self._by_phase[slowest].items():
            clock.advance_compute(seconds, phase=phase)
        self._lanes = [0.0] * self.n_workers
        self._by_phase = [{} for _ in range(self.n_workers)]
        self.syncs += 1
        return charged


class PhaseStage:
    """One execution of one worker phase, used as a context manager.

    On entry: every worker passes the master's lockstep barrier into the
    phase, and ``on_phase_start`` fires.  On exit: the simulated seconds
    charged during the stage (grouped by cost-model label) and the real
    wall-clock duration are reported through ``on_phase_end``.
    """

    def __init__(
        self,
        runner: "PhaseRunner",
        phase: WorkerPhase,
        tree_index: int,
    ) -> None:
        self.runner = runner
        self.phase = phase
        self.tree_index = tree_index
        self._clock_snapshot: dict[str, float] = {}
        self._started_at = 0.0

    def __enter__(self) -> "PhaseStage":
        runner = self.runner
        if runner.master is not None:
            runner.master.enter_all(self.phase)
        if runner.clock is not None:
            self._clock_snapshot = runner.clock.by_phase()
        self._started_at = time.perf_counter()
        runner.callbacks.on_phase_start(self.phase, self.tree_index)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is not None:
            return
        wall = time.perf_counter() - self._started_at
        charges: dict[str, float] = {}
        if self.runner.clock is not None:
            after = self.runner.clock.by_phase()
            before = self._clock_snapshot
            for label, value in after.items():
                if label not in before:
                    charges[label] = value
                elif value != before[label]:
                    charges[label] = value - before[label]
        self.runner.callbacks.on_phase_end(
            self.phase, self.tree_index, charges, wall
        )

    # ------------------------------------------------------------------
    # in-stage accounting helpers
    # ------------------------------------------------------------------

    def worker_timer(self) -> WorkerTimer:
        """A fresh per-worker compute timer sized to the cluster."""
        return WorkerTimer(self.runner.n_workers)

    def barrier(self, timer: WorkerTimer) -> float:
        """End the stage's parallel region: charge the slowest worker.

        Per-worker seconds are speed-scaled first, then the maximum is
        charged to the simulated clock under this stage's phase label.
        Returns the seconds charged (0.0 without a clock).

        Under bounded staleness (``runner.lanes`` set) nothing is
        charged here: the scaled seconds accumulate in the per-worker
        lanes and the clock pays only at the next staleness sync.  The
        clock's per-layer speed jitter is applied exactly once on either
        path — inside ``clock.barrier`` on the synchronous one, at defer
        time on the lanes one (the current layer's factors must price
        the seconds, not whichever layer the sync lands on).
        """
        clock = self.runner.clock
        if clock is None:
            return 0.0
        scaled = scale_by_speeds(timer.seconds, self.runner.cluster)
        if self.runner.lanes is not None:
            self.runner.lanes.defer(clock.jittered(scaled), self.phase.value)
            return 0.0
        return clock.barrier(scaled, phase=self.phase.value)

    def charge_comm(self, seconds: float) -> None:
        """Charge communication time under this stage's phase label."""
        if self.runner.clock is not None:
            self.runner.clock.advance_comm(seconds, phase=self.phase.value)


class PhaseRunner:
    """Factory for :class:`PhaseStage` objects bound to one fit.

    Args:
        callbacks: The hook spine events are dispatched to.
        master: Lockstep coordinator; ``None`` for single-machine runs
            (no phase-machine validation).
        clock: Simulated cluster clock; ``None`` for single-machine runs
            (stages then report only wall-clock).
        cluster: Cluster shape, used for worker count and speed scaling.
        lanes: Bounded-staleness lanes; ``None`` (default) keeps every
            stage barrier synchronous.
    """

    def __init__(
        self,
        callbacks: CallbackList,
        master: Master | None = None,
        clock: SimClock | None = None,
        cluster: ClusterConfig | None = None,
        lanes: StalenessLanes | None = None,
    ) -> None:
        self.callbacks = callbacks
        self.master = master
        self.clock = clock
        self.cluster = cluster
        self.lanes = lanes

    @property
    def n_workers(self) -> int:
        """Simulated worker count (1 for single-machine runs)."""
        if self.cluster is not None:
            return self.cluster.n_workers
        if self.master is not None:
            return self.master.n_workers
        return 1

    def stage(self, phase: WorkerPhase, tree_index: int = -1) -> PhaseStage:
        """A context manager running one ``phase`` stage."""
        return PhaseStage(self, phase, tree_index)
