"""Client-facing ensemble of parameter-server shards.

A :class:`ParameterServerGroup` owns ``p`` :class:`PSServer` shards and a
:class:`VectorPartitioner` per registered parameter.  Workers interact
only with the group: it splits a pushed row into per-range slices, routes
them to the hosting servers (decoding low-precision payloads server-side
before the additive merge), gathers pulls, and dispatches pull UDFs.

Every call returns a :class:`TransferStats` so trainers can charge the
simulated clock with real wire-byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..compression.lowprec import (
    compress_blocked,
    compress_flat,
    decompress_blocked,
    decompress_flat,
)
from ..errors import PSError
from ..sketch.quantile import AnySketch, sketch_from_wire, sketch_to_wire
from .partitioner import Partition, VectorPartitioner
from .server import PSServer, PullUDF
from .slab import CompressedSlab, SlabLayout, SparseSlab, compress_slab


@dataclass
class TransferStats:
    """Wire accounting of one PS interaction.

    Attributes:
        bytes_up: Bytes sent from the caller to servers.
        bytes_down: Bytes sent from servers to the caller.
        messages: Point-to-point messages involved.
    """

    bytes_up: int = 0
    bytes_down: int = 0
    messages: int = 0

    def merge(self, other: "TransferStats") -> "TransferStats":
        """Accumulate ``other`` into this record (returns self)."""
        self.bytes_up += other.bytes_up
        self.bytes_down += other.bytes_down
        self.messages += other.messages
        return self


class ParameterServerGroup:
    """The ``p`` servers of Figure 4 behind one facade.

    Args:
        n_servers: Number of shards p.
        partition_salt: Propagated to every parameter's partitioner.
        fabric: Optional delivery fabric (``chaos.FaultyFabric``).  When
            set, every per-partition message goes through
            ``fabric.deliver`` — which may drop, duplicate, delay, or
            crash it per the active fault plan — and pushes must carry a
            ``seq`` token so retried deliveries stay idempotent.
    """

    def __init__(
        self, n_servers: int, partition_salt: int = 0, fabric=None
    ) -> None:
        if n_servers < 1:
            raise PSError(f"n_servers must be >= 1, got {n_servers}")
        self.servers = [PSServer(sid) for sid in range(n_servers)]
        self._partitioners: dict[str, VectorPartitioner] = {}
        self._layouts: dict[str, SlabLayout] = {}
        self._salt = partition_salt
        self.fabric = fabric

    def _deliver(self, point, send, *, server, worker, payload_bytes):
        if self.fabric is None:
            return send()
        return self.fabric.deliver(
            point, send, server=server, worker=worker, payload_bytes=payload_bytes
        )

    @property
    def n_servers(self) -> int:
        """Number of shards."""
        return len(self.servers)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        row_length: int,
        n_partitions: int | None = None,
        align: int = 1,
        layout: SlabLayout | None = None,
    ) -> VectorPartitioner:
        """Register a (row-organized) parameter of ``row_length`` elements.

        ``align`` forces range boundaries onto multiples of that many
        elements (e.g. ``2 * n_bins`` so whole features stay on one
        server).  ``layout`` declares the row a per-feature histogram and
        enables the sparse slab push path (:meth:`push_slab`); it implies
        feature-aligned ranges.  Returns the partitioner so callers can
        map ranges.
        """
        if name in self._partitioners:
            raise PSError(f"parameter {name!r} already registered")
        if layout is not None:
            if layout.row_length != row_length:
                raise PSError(
                    f"layout row length {layout.row_length} does not match "
                    f"registered length {row_length}"
                )
            if align % layout.feature_width != 0:
                raise PSError(
                    f"slab layout needs feature-aligned ranges: align "
                    f"{align} is not a multiple of {layout.feature_width}"
                )
        partitioner = VectorPartitioner(
            row_length, self.n_servers, n_partitions, salt=self._salt, align=align
        )
        self._partitioners[name] = partitioner
        if layout is not None:
            self._layouts[name] = layout
        for server in self.servers:
            hosted = partitioner.partitions_on_server(server.server_id)
            server.register(name, hosted, layout=layout)
        return partitioner

    def partitioner(self, name: str) -> VectorPartitioner:
        """The partitioner of a registered parameter."""
        try:
            return self._partitioners[name]
        except KeyError as exc:
            raise PSError(f"parameter {name!r} not registered") from exc

    # ------------------------------------------------------------------
    # push / pull
    # ------------------------------------------------------------------

    def push_row(
        self,
        name: str,
        row: int,
        flat: np.ndarray,
        compression_bits: int = 0,
        rng: np.random.Generator | None = None,
        compression_block: int | None = None,
        seq: object | None = None,
        worker: int | None = None,
    ) -> TransferStats:
        """Push one row, split by ranges, optionally low-precision.

        With ``compression_bits > 0`` each range slice is quantized by the
        Section 6.1 codec before "transmission" and decoded on the server,
        so the stored parameter accumulates the (unbiased) decoded floats
        while only the compressed bytes count on the wire.

        ``compression_block`` selects the scale granularity: None uses one
        scale per range slice; a positive value gives every that-many
        values their own scale (e.g. ``n_bins`` so each per-feature
        histogram is scaled independently, the Section 6.1 reading of
        "the maximal absolute value in the histogram").

        ``seq`` is the idempotence token forwarded to
        :meth:`PSServer.handle_push`; required when a fault fabric is
        attached (a retried delivery must not double-count), optional —
        but honored — otherwise.  ``worker`` identifies the pushing
        worker for fault filtering.
        """
        partitioner = self.partitioner(name)
        flat = np.asarray(flat, dtype=np.float64)
        if flat.shape != (partitioner.length,):
            raise PSError(
                f"push_row to {name!r}: expected {partitioner.length} values, "
                f"got {flat.shape}"
            )
        if compression_bits and rng is None:
            raise PSError("compression requires an rng for stochastic rounding")
        if self.fabric is not None and seq is None:
            raise PSError(
                "push_row without a seq token while a fault fabric is "
                "attached: retried pushes would double-count"
            )
        stats = TransferStats()
        for part in partitioner.partitions:
            piece = flat[part.lo : part.hi]
            if compression_bits and compression_block:
                blocked = compress_blocked(
                    piece, compression_block, compression_bits, rng
                )
                piece_bytes = blocked.wire_bytes
                piece = decompress_blocked(blocked)
            elif compression_bits:
                compressed = compress_flat(piece, compression_bits, rng)
                piece_bytes = compressed.wire_bytes
                piece = decompress_flat(compressed)
            else:
                piece_bytes = piece.size * 4
            stats.bytes_up += piece_bytes
            server = self.servers[part.server_id]

            def send(server=server, part=part, piece=piece):
                return server.handle_push(
                    name, row, part.partition_id, piece, seq=seq
                )

            self._deliver(
                "push",
                send,
                server=part.server_id,
                worker=worker,
                payload_bytes=piece_bytes,
            )
            stats.messages += 1
        return stats

    def push_slab(
        self,
        name: str,
        row: int,
        slab: SparseSlab,
        compression_bits: int = 0,
        rng: np.random.Generator | None = None,
        compression_block: int | None = None,
        seq: object | None = None,
        worker: int | None = None,
    ) -> TransferStats:
        """Push one block's sparse histogram slab for ``row``.

        The slab is routed to every range overlapping its feature stripe
        — *every* such range, even where the slab lists no features,
        because the block's gradient sums must fold into the zero buckets
        of its stripe's empty features there.  Each range is billed only
        the slab's share: header plus the listed features inside the
        range.  ``seq``/``worker`` follow the :meth:`push_row` contract
        (seq required under a fault fabric).

        With ``compression_bits > 0`` the slab's value payload is
        quantized *once* — before the fan-out to partitions, so the
        stochastic-rounding stream does not depend on the partition
        layout — and every overlapping range receives (and decodes) the
        same :class:`CompressedSlab`, billed at the packed wire size.
        ``compression_block`` follows the :meth:`push_row` contract and
        defaults to one scale per g- and per h-histogram.
        """
        partitioner = self.partitioner(name)
        layout = self._layouts.get(name)
        if layout is None:
            raise PSError(
                f"parameter {name!r} was registered without a slab layout"
            )
        if self.fabric is not None and seq is None:
            raise PSError(
                "push_slab without a seq token while a fault fabric is "
                "attached: retried pushes would double-count"
            )
        if compression_bits and rng is None:
            raise PSError("compression requires an rng for stochastic rounding")
        wire_slab: SparseSlab | CompressedSlab = slab
        if compression_bits:
            wire_slab = compress_slab(
                slab, layout, compression_bits, rng, compression_block
            )
        width = layout.feature_width
        stats = TransferStats()
        for part in partitioner.partitions_in_range(
            slab.col_lo * width, slab.col_hi * width
        ):
            piece_bytes = wire_slab.wire_bytes_for(
                part.lo // width, part.hi // width
            )
            stats.bytes_up += piece_bytes
            server = self.servers[part.server_id]

            def send(server=server, part=part):
                return server.handle_push_slab(
                    name, row, part.partition_id, wire_slab, seq=seq
                )

            self._deliver(
                "push",
                send,
                server=part.server_id,
                worker=worker,
                payload_bytes=piece_bytes,
            )
            stats.messages += 1
        return stats

    def push_window(
        self,
        name: str,
        entries: list[tuple[int, SparseSlab | CompressedSlab]],
        seq: object | None = None,
        worker: int | None = None,
    ) -> TransferStats:
        """Push one locally-aggregated window of ``(row, slab)`` deltas.

        The caller has already folded the window's node deltas
        (:class:`repro.ps.localagg.LocalAggregator`) and encoded each
        folded slab *once* — entries may be :class:`CompressedSlab`
        (PR 7 codec) or plain :class:`SparseSlab`; this method only
        routes.  Every server partition receives at most one message
        carrying its shares of all entries, so a window of ``W`` node
        deltas costs one latency term per partition instead of ``W``.
        Each entry's share is billed as 4 bytes of row id plus its slab
        wire share; entries whose stripe misses a partition are skipped
        (their own stripes' windows cover those).

        ``seq``/``worker`` follow the :meth:`push_row` contract (seq
        required under a fault fabric), with one extension the windowed
        seam demands: the token must identify the *window*, not just the
        round — ``(round, window, worker)`` — so a retry inside a window
        deduplicates while the next window's touch of the same rows
        applies.
        """
        partitioner = self.partitioner(name)
        layout = self._layouts.get(name)
        if layout is None:
            raise PSError(
                f"parameter {name!r} was registered without a slab layout"
            )
        if self.fabric is not None and seq is None:
            raise PSError(
                "push_window without a seq token while a fault fabric is "
                "attached: retried pushes would double-count"
            )
        width = layout.feature_width
        stats = TransferStats()
        for part in partitioner.partitions:
            f_lo, f_hi = part.lo // width, part.hi // width
            share = [
                (row, slab)
                for row, slab in entries
                if slab.wire_bytes_for(f_lo, f_hi) > 0
            ]
            if not share:
                continue
            piece_bytes = sum(
                4 + slab.wire_bytes_for(f_lo, f_hi) for _, slab in share
            )
            stats.bytes_up += piece_bytes
            server = self.servers[part.server_id]

            def send(server=server, part=part, share=share):
                return server.handle_push_window(
                    name, part.partition_id, share, seq=seq
                )

            self._deliver(
                "push",
                send,
                server=part.server_id,
                worker=worker,
                payload_bytes=piece_bytes,
            )
            stats.messages += 1
        return stats

    def push_window_rows(
        self,
        name: str,
        entries: list[tuple[int, int, np.ndarray, int]],
        seq: object | None = None,
        worker: int | None = None,
    ) -> TransferStats:
        """Push one window of pre-encoded dense row pieces.

        The lossy row codec is *partition-scoped* — :meth:`push_row`
        quantizes each partition slice with a rounding stream consumed
        in partition order — so a windowed push of compressed dense
        deltas cannot fold before encoding without changing the stored
        bits.  Instead the caller encodes every delta exactly as
        :meth:`push_row` would (same rng, same slices) and hands the
        decoded pieces here: ``entries`` is a list of ``(row,
        partition_id, values, wire_bytes)`` tuples.  This method only
        batches delivery — one message per server carries all of its
        pieces, applied in entry order, so the stored floats and their
        addend order match the per-delta pushes bit for bit while the
        window pays one latency term per server.

        ``seq``/``worker`` follow the :meth:`push_window` contract: the
        token must identify the window — ``(round, window, worker)`` —
        so a retried delivery deduplicates per ``(row, partition)``
        while later windows still apply.
        """
        partitioner = self.partitioner(name)
        if self.fabric is not None and seq is None:
            raise PSError(
                "push_window_rows without a seq token while a fault fabric "
                "is attached: retried pushes would double-count"
            )
        parts = {part.partition_id: part for part in partitioner.partitions}
        by_server: dict[int, list[tuple[int, int, np.ndarray, int]]] = {}
        for row, partition_id, piece, piece_bytes in entries:
            part = parts.get(partition_id)
            if part is None:
                raise PSError(
                    f"push_window_rows to {name!r}: unknown partition "
                    f"{partition_id}"
                )
            by_server.setdefault(part.server_id, []).append(
                (row, partition_id, piece, piece_bytes)
            )
        stats = TransferStats()
        for server_id in sorted(by_server):
            share = by_server[server_id]
            payload_bytes = sum(4 + piece_bytes for *_rest, piece_bytes in share)
            server = self.servers[server_id]

            def send(server=server, share=share):
                for row, partition_id, piece, _piece_bytes in share:
                    server.handle_push(name, row, partition_id, piece, seq=seq)
                return None

            self._deliver(
                "push",
                send,
                server=server_id,
                worker=worker,
                payload_bytes=payload_bytes,
            )
            stats.bytes_up += payload_bytes
            stats.messages += 1
        return stats

    def push_sketch(
        self,
        name: str,
        sketches: dict[int, AnySketch],
        seq: object | None = None,
        worker: int | None = None,
    ) -> TransferStats:
        """Push one worker's per-feature quantile summaries.

        ``sketches`` maps global feature ids (elements of the registered
        parameter, one element per feature) to local summaries.  Each
        summary is serialized with the tagged wire frame, bucketed by the
        partition hosting its feature, and delivered as one message per
        partition — the servers merge arrivals in delivery order, so a
        fixed push order across workers yields a deterministic merged
        summary.  ``seq``/``worker`` follow the :meth:`push_row` contract
        (seq required under a fault fabric; the engine uses
        ``("sketch", worker_id)``).
        """
        partitioner = self.partitioner(name)
        if self.fabric is not None and seq is None:
            raise PSError(
                "push_sketch without a seq token while a fault fabric is "
                "attached: retried pushes would double-count"
            )
        buckets: dict[int, tuple[Partition, list[tuple[int, bytes]]]] = {}
        for feature in sorted(sketches):
            part = partitioner.partition_of_index(feature)
            _, payloads = buckets.setdefault(part.partition_id, (part, []))
            payloads.append((feature, sketch_to_wire(sketches[feature])))
        stats = TransferStats()
        for pid in sorted(buckets):
            part, payloads = buckets[pid]
            piece_bytes = sum(4 + len(wire) for _, wire in payloads)
            stats.bytes_up += piece_bytes
            server = self.servers[part.server_id]

            def send(server=server, part=part, payloads=payloads):
                return server.handle_push_sketch(
                    name, part.partition_id, payloads, seq=seq
                )

            self._deliver(
                "push",
                send,
                server=part.server_id,
                worker=worker,
                payload_bytes=piece_bytes,
            )
            stats.messages += 1
        return stats

    def pull_sketches(
        self, name: str, worker: int | None = None
    ) -> tuple[dict[int, AnySketch], TransferStats]:
        """Pull every merged summary, reassembled across partitions.

        Returns a dict of global feature id to merged summary (features
        nobody pushed are absent) plus the transfer accounting — the
        PULL_SKETCH bytes the engine charges.
        """
        partitioner = self.partitioner(name)
        merged: dict[int, AnySketch] = {}
        stats = TransferStats()
        for part in partitioner.partitions:
            server = self.servers[part.server_id]

            def send(server=server, part=part):
                return server.handle_pull_sketch(name, part.partition_id)

            payloads = self._deliver(
                "pull",
                send,
                server=part.server_id,
                worker=worker,
                payload_bytes=0,
            )
            for feature, wire in payloads:
                merged[feature] = sketch_from_wire(wire)
                stats.bytes_down += 4 + len(wire)
            stats.messages += 1
        return merged, stats

    def pull_row(
        self, name: str, row: int, worker: int | None = None
    ) -> tuple[np.ndarray, TransferStats]:
        """Pull a full row, reassembled from all ranges."""
        partitioner = self.partitioner(name)
        flat = np.empty(partitioner.length, dtype=np.float64)
        stats = TransferStats()
        for part in partitioner.partitions:
            server = self.servers[part.server_id]

            def send(server=server, part=part):
                return server.handle_pull(name, row, part.partition_id)

            piece = self._deliver(
                "pull",
                send,
                server=part.server_id,
                worker=worker,
                payload_bytes=(part.length * 4),
            )
            flat[part.lo : part.hi] = piece
            stats.bytes_down += piece.size * 4
            stats.messages += 1
        return flat, stats

    def pull_row_udf(
        self,
        name: str,
        row: int,
        udf: PullUDF,
        result_bytes: int = 12,
        worker: int | None = None,
    ) -> tuple[list[tuple[Partition, Any]], TransferStats]:
        """Run ``udf`` on every range of ``row`` server-side.

        Args:
            name, row: The parameter row.
            udf: Server-side function ``(values, partition) -> result``.
            result_bytes: Wire size charged per UDF result; the two-phase
                split reply is "one integer and two floating-point
                numbers" (Section 6.3), hence the 12-byte default.
            worker: Requesting worker id (fault filtering).

        Returns:
            ([(partition, result), ...] in partition order, stats).
        """
        partitioner = self.partitioner(name)
        results: list[tuple[Partition, Any]] = []
        stats = TransferStats()
        for part in partitioner.partitions:
            server = self.servers[part.server_id]

            def send(server=server, part=part):
                return server.handle_pull_udf(name, row, part.partition_id, udf)

            result = self._deliver(
                "pull_udf",
                send,
                server=part.server_id,
                worker=worker,
                payload_bytes=result_bytes,
            )
            results.append((part, result))
            stats.bytes_down += result_bytes
            stats.messages += 1
        return results, stats

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def clear_row(self, name: str, row: int) -> None:
        """Free one row on every shard."""
        self.partitioner(name)  # raises if unknown
        for server in self.servers:
            server.clear_row(name, row)

    def clear_parameter(self, name: str) -> None:
        """Free all rows of a parameter on every shard."""
        self.partitioner(name)
        for server in self.servers:
            server.clear_parameter(name)

    def memory_bytes(self) -> int:
        """Total parameter bytes across shards."""
        return sum(server.memory_bytes() for server in self.servers)
