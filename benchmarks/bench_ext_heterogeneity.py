"""Extension ablation — straggler sensitivity of synchronous training.

The Section 4.4 barrier means every phase ends when the slowest worker
finishes, so one slow machine taxes the whole cluster.  This bench
quantifies the effect (and shows communication is untouched) — the
problem the authors' companion heterogeneity-aware PS work targets.
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, TrainConfig, train_distributed
from repro.datasets import synthesis_like

from conftest import bench_scale


def test_ext_straggler_sensitivity(benchmark, report):
    scale = bench_scale()
    data = synthesis_like(scale=0.15 * scale, seed=3)
    config = TrainConfig(
        n_trees=4, max_depth=6, n_split_candidates=20, learning_rate=0.2
    )
    scenarios = [
        ("uniform cluster", None),
        ("one worker at 50%", (1.0,) * 7 + (0.5,)),
        ("one worker at 25%", (1.0,) * 7 + (0.25,)),
    ]

    def run():
        rows = []
        for label, speeds in scenarios:
            cluster = ClusterConfig(
                n_workers=8, n_servers=8, worker_speeds=speeds
            )
            result = train_distributed("dimboost", data, cluster, config)
            rows.append(
                [
                    label,
                    result.sim_seconds,
                    result.breakdown.computation,
                    result.breakdown.communication,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = rows[0][1]
    for row in rows:
        row.append(row[1] / baseline)
    report.add_table(
        "Extension: straggler sensitivity (synchronous barriers)",
        ["scenario", "sim seconds", "computation", "communication", "slowdown"],
        rows,
        notes="8 workers; barriers pay the slowest machine",
    )
    times = [row[1] for row in rows]
    comps = [row[2] for row in rows]
    assert times[0] < times[1] < times[2]
    # The 25% straggler should inflate compute by roughly its slowdown
    # share, and communication stays flat.
    assert comps[2] > comps[0] * 2.0
    comms = [row[3] for row in rows]
    assert abs(comms[2] - comms[0]) / comms[0] < 0.3
