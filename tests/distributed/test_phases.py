"""Tests for per-phase time attribution."""

from __future__ import annotations

import pytest

from repro import ClusterConfig, TrainConfig, train_distributed
from repro.cluster import SimClock
from repro.distributed import BACKEND_NAMES
from repro.ps.master import WorkerPhase


class TestSimClockPhases:
    def test_labelled_charges_tracked(self):
        clock = SimClock()
        clock.advance_comm(1.0, phase="A")
        clock.advance_compute(0.5, phase="A")
        clock.barrier([0.2, 0.3], phase="B")
        assert clock.by_phase() == pytest.approx({"A": 1.5, "B": 0.3})

    def test_unlabelled_charges_excluded(self):
        clock = SimClock()
        clock.advance_comm(1.0)
        assert clock.by_phase() == {}
        assert clock.time == 1.0

    def test_by_phase_returns_copy(self):
        clock = SimClock()
        clock.advance_comm(1.0, phase="A")
        snapshot = clock.by_phase()
        snapshot["A"] = 99.0
        assert clock.by_phase()["A"] == 1.0


class TestEnginePhases:
    @pytest.fixture(scope="class")
    def result(self, small_dataset):
        config = TrainConfig(n_trees=2, max_depth=4, n_split_candidates=8)
        return train_distributed(
            "dimboost", small_dataset, ClusterConfig(4, 4), config
        )

    def test_all_phases_present(self, result):
        expected = {
            "CREATE_SKETCH",
            "PULL_SKETCH",
            "NEW_TREE",
            "BUILD_HISTOGRAM",
            "FIND_SPLIT",
            "SPLIT_TREE",
        }
        assert set(result.phases) == expected

    def test_phases_sum_to_clock_total(self, result):
        """Every charged second carries a phase label — no leakage."""
        charged = result.breakdown.computation + result.breakdown.communication
        assert sum(result.phases.values()) == pytest.approx(charged, rel=1e-9)

    def test_phase_names_match_worker_phases(self, result):
        valid = {phase.value for phase in WorkerPhase}
        assert set(result.phases) <= valid

    @pytest.mark.parametrize("system", BACKEND_NAMES)
    def test_phase_accounting_complete_for_every_system(
        self, system, tiny_dataset
    ):
        """Invariant: the per-phase view is a complete decomposition.

        The phases dict (populated through the hook spine) must sum to
        the clock's computation + communication for every backend — a
        stage charging outside its accounting window would break this.
        """
        config = TrainConfig(n_trees=2, max_depth=3, n_split_candidates=8)
        result = train_distributed(
            system, tiny_dataset, ClusterConfig(3, 3), config
        )
        charged = result.breakdown.computation + result.breakdown.communication
        assert sum(result.phases.values()) == pytest.approx(charged, rel=1e-9)

    def test_find_split_dominated_by_comm_for_mllib(self, small_dataset):
        """MLlib's bottleneck is FIND_SPLIT (statistics aggregation).

        The dense-build compute is overridden to the sparse path so the
        comparison isolates the aggregation cost the claim is about.
        """
        config = TrainConfig(n_trees=2, max_depth=4, n_split_candidates=8)
        result = train_distributed(
            "mllib",
            small_dataset,
            ClusterConfig(4, 4),
            config,
            sparse_build=True,
        )
        assert result.phases["FIND_SPLIT"] == max(result.phases.values())
