"""Known-good RP005 twin: every kernel allocation states its dtype."""

import numpy as np


def accumulate(n_features: int, n_bins: int) -> np.ndarray:
    return np.zeros((2, n_features, n_bins), dtype=np.float64)


def scratch(n: int) -> np.ndarray:
    return np.empty(n, np.float64)  # positional dtype also counts


def pad(n: int) -> np.ndarray:
    return np.full(n, np.inf, dtype=np.float64)


def weights(n: int) -> np.ndarray:
    return np.ones(n, dtype=np.float64)
