#!/usr/bin/env python
"""Distributed training: DimBoost vs the baseline systems.

Runs the same high-dimensional workload through all five simulated
systems (MLlib, XGBoost, LightGBM, TencentBoost, DimBoost) on an
8-worker cluster and prints the end-to-end time decomposition the paper
reports — who wins, and where the time goes.

Run:
    python examples/distributed_training.py
"""

from __future__ import annotations

from repro import BACKEND_NAMES, ClusterConfig, TrainConfig, train_distributed
from repro.boosting import error_rate
from repro.datasets import gender_like, train_test_split


def main() -> None:
    data = gender_like(scale=0.15, seed=1)
    train, test = train_test_split(data, test_fraction=0.1, seed=1)
    print(f"dataset: {data}")

    cluster = ClusterConfig(n_workers=8, n_servers=8)
    config = TrainConfig(
        n_trees=5, max_depth=6, n_split_candidates=20, learning_rate=0.2
    )
    print(
        f"cluster: {cluster.n_workers} workers, {cluster.n_servers} parameter "
        f"servers (co-located)\n"
    )

    header = (
        f"{'system':14s} {'total(s)':>9s} {'load':>7s} {'compute':>8s} "
        f"{'comm':>7s} {'test err':>9s}"
    )
    print(header)
    print("-" * len(header))
    results = {}
    for system in BACKEND_NAMES:
        result = train_distributed(system, train, cluster, config)
        err = error_rate(test.y, result.model.predict(test.X))
        results[system] = result
        b = result.breakdown
        print(
            f"{system:14s} {b.total:9.3f} {b.loading:7.3f} {b.computation:8.3f} "
            f"{b.communication:7.3f} {err:9.4f}"
        )

    dim = results["dimboost"].sim_seconds
    print("\nspeedups over the baselines (paper: 2-9x):")
    for system in BACKEND_NAMES[:-1]:
        print(f"  dimboost vs {system:14s} {results[system].sim_seconds / dim:5.1f}x")

    print("\nconvergence of DimBoost (train error vs simulated cluster time):")
    for record in results["dimboost"].rounds:
        print(
            f"  t={record.sim_elapsed:7.3f}s  tree {record.tree_index}  "
            f"train error {record.train_error:.4f}"
        )


if __name__ == "__main__":
    main()
