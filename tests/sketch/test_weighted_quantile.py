"""Unit tests for the hessian-weighted GK summary.

The weighted summary (Huang & Yi, arXiv:1909.07633) generalizes the GK
entries to carry weight mass in ``g``/``delta``: a query at fraction
``q`` must land within ``eps * total_weight`` of the true weighted rank.
These tests pin the error bound through construction, merging at
``eps / 2`` (merge errors add), serialization, the column batch builder,
and the tagged wire frame the PS transport uses for both sketch kinds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SketchError
from repro.sketch import (
    GKSketch,
    WeightedGKSketch,
    sketch_columns_weighted,
    sketch_from_wire,
    sketch_to_wire,
)


def weighted_rank_error(sketch, values, weights, qs):
    """Max |true weighted rank - q * W| over queried fractions."""
    order = np.argsort(values, kind="stable")
    sv, sw = values[order], weights[order]
    cum = np.cumsum(sw)
    total = cum[-1]
    worst = 0.0
    for q in qs:
        got = sketch.query(q)
        # Weighted rank of the returned value: mass at or below it.
        rank = cum[np.searchsorted(sv, got, side="right") - 1] if got >= sv[0] else 0.0
        worst = max(worst, abs(rank - q * total))
    return worst, total


@pytest.fixture()
def batch():
    rng = np.random.default_rng(42)
    values = rng.normal(size=800)
    weights = rng.uniform(0.05, 3.0, size=800)
    return values, weights


class TestConstruction:
    def test_rank_error_bound(self, batch):
        values, weights = batch
        eps = 0.05
        sk = WeightedGKSketch.from_values(values, weights, eps=eps)
        worst, total = weighted_rank_error(
            sk, values, weights, np.linspace(0.05, 0.95, 19)
        )
        assert worst <= eps * total

    def test_total_weight_and_count(self, batch):
        values, weights = batch
        sk = WeightedGKSketch.from_values(values, weights, eps=0.1)
        assert sk.count == len(values)
        assert sk.total_weight == pytest.approx(weights.sum())

    def test_min_max_exact(self, batch):
        values, weights = batch
        sk = WeightedGKSketch.from_values(values, weights, eps=0.1)
        assert sk.min_value == values.min()
        assert sk.max_value == values.max()

    def test_uniform_weights_rank_like_unweighted(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=500)
        sk_w = WeightedGKSketch.from_values(values, np.ones(500), eps=0.05)
        sk_u = GKSketch.from_values(values, eps=0.05)
        qs = np.linspace(0.1, 0.9, 9)
        # Unit weights make weighted rank == instance rank; both sketches
        # answer within eps * n of the true rank, so within 2 eps n of
        # each other in rank space.
        sorted_vals = np.sort(values)
        for q in qs:
            rw = np.searchsorted(sorted_vals, sk_w.query(q), side="right")
            ru = np.searchsorted(sorted_vals, sk_u.query(q), side="right")
            assert abs(rw - ru) <= 2 * 0.05 * 500

    def test_all_zero_weights_empty(self):
        sk = WeightedGKSketch.from_values([1.0, 2.0], [0.0, 0.0], eps=0.1)
        assert len(sk) == 0

    def test_empty_batch(self):
        sk = WeightedGKSketch.from_values([], [], eps=0.1)
        assert len(sk) == 0 and sk.total_weight == 0.0

    def test_validation(self):
        with pytest.raises(SketchError):
            WeightedGKSketch.from_values([1.0, 2.0], [1.0], eps=0.1)
        with pytest.raises(SketchError):
            WeightedGKSketch.from_values([1.0], [-1.0], eps=0.1)
        with pytest.raises(SketchError):
            WeightedGKSketch(eps=0.0)


class TestMerge:
    def test_merge_rank_error_adds(self):
        """Locals at eps/2 merge to a summary honoring eps overall."""
        rng = np.random.default_rng(9)
        eps = 0.1
        parts, all_v, all_w = [], [], []
        for _ in range(4):
            v = rng.normal(size=300)
            w = rng.uniform(0.1, 2.0, size=300)
            parts.append(WeightedGKSketch.from_values(v, w, eps=eps / 2))
            all_v.append(v)
            all_w.append(w)
        merged = parts[0]
        for p in parts[1:]:
            merged = merged.merge(p)
        values = np.concatenate(all_v)
        weights = np.concatenate(all_w)
        worst, total = weighted_rank_error(
            merged, values, weights, np.linspace(0.1, 0.9, 9)
        )
        assert worst <= eps * total
        assert merged.total_weight == pytest.approx(weights.sum())

    def test_merge_with_empty(self, batch):
        values, weights = batch
        sk = WeightedGKSketch.from_values(values, weights, eps=0.1)
        empty = WeightedGKSketch(eps=0.1)
        assert sk.merge(empty).to_bytes() == sk.to_bytes()
        assert empty.merge(sk).to_bytes() == sk.to_bytes()

    def test_merge_takes_coarser_eps(self):
        rng = np.random.default_rng(3)
        fine = WeightedGKSketch.from_values(
            rng.normal(size=200), rng.uniform(0.1, 1.0, 200), eps=0.02
        )
        coarse = WeightedGKSketch.from_values(
            rng.normal(size=200), rng.uniform(0.1, 1.0, 200), eps=0.1
        )
        assert fine.merge(coarse).eps == 0.1
        assert coarse.merge(fine).eps == 0.1

    def test_kind_mismatch_rejected(self, batch):
        values, weights = batch
        wsk = WeightedGKSketch.from_values(values, weights, eps=0.1)
        gsk = GKSketch.from_values(values, eps=0.1)
        with pytest.raises(SketchError):
            wsk.merge(gsk)
        with pytest.raises(SketchError):
            gsk.merge(wsk)


class TestSerialization:
    def test_roundtrip_bit_exact(self, batch):
        values, weights = batch
        sk = WeightedGKSketch.from_values(values, weights, eps=0.05)
        back = WeightedGKSketch.from_bytes(sk.to_bytes())
        assert back.to_bytes() == sk.to_bytes()
        assert back.total_weight == sk.total_weight
        assert back.count == sk.count

    def test_wire_bytes_matches(self, batch):
        values, weights = batch
        sk = WeightedGKSketch.from_values(values, weights, eps=0.05)
        assert len(sk.to_bytes()) == sk.wire_bytes == 28 + 24 * len(sk)

    def test_truncated_payload_rejected(self, batch):
        values, weights = batch
        sk = WeightedGKSketch.from_values(values, weights, eps=0.05)
        with pytest.raises(SketchError):
            WeightedGKSketch.from_bytes(sk.to_bytes()[:-3])


class TestTaggedWire:
    def test_round_trip_dispatches_on_kind(self, batch):
        values, weights = batch
        wsk = WeightedGKSketch.from_values(values, weights, eps=0.05)
        gsk = GKSketch.from_values(values, eps=0.05)
        for sk, cls in ((wsk, WeightedGKSketch), (gsk, GKSketch)):
            back = sketch_from_wire(sketch_to_wire(sk))
            assert isinstance(back, cls)
            assert back.to_bytes() == sk.to_bytes()

    def test_unknown_tag_rejected(self):
        with pytest.raises(SketchError):
            sketch_from_wire(b"\x7f" + b"\x00" * 20)


class TestColumnBatch:
    def test_matches_per_column_from_values(self):
        rng = np.random.default_rng(17)
        n_rows, n_cols = 60, 5
        dense = rng.normal(size=(n_rows, n_cols))
        dense[rng.random((n_rows, n_cols)) < 0.4] = 0.0
        row_weights = rng.uniform(0.1, 2.0, size=n_rows)

        from scipy.sparse import csr_matrix

        X = csr_matrix(dense)
        sketches = sketch_columns_weighted(
            X.indptr, X.indices, X.data, n_cols, row_weights, eps=0.05
        )
        for col in range(n_cols):
            rows, = np.nonzero(dense[:, col])
            ref = WeightedGKSketch.from_values(
                dense[rows, col], row_weights[rows], eps=0.05
            )
            assert sketches[col].to_bytes() == ref.to_bytes()

    def test_empty_column_gets_empty_sketch(self):
        indptr = np.array([0, 1], dtype=np.int64)
        indices = np.array([0], dtype=np.int64)
        data = np.array([2.0])
        sketches = sketch_columns_weighted(
            indptr, indices, data, 3, np.array([1.5]), eps=0.1
        )
        assert len(sketches[0]) == 1
        assert len(sketches[1]) == 0 and len(sketches[2]) == 0
