"""Tests for the binary dataset storage levels (Section 7.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    CSRMatrix,
    StorageLevel,
    load_dataset,
    save_dataset,
)
from repro.errors import DataError


@pytest.fixture()
def saved(tmp_path, tiny_dataset):
    path = tmp_path / "tiny.npz"
    save_dataset(tiny_dataset, path)
    return path, tiny_dataset


class TestRoundTrip:
    @pytest.mark.parametrize("level", list(StorageLevel))
    def test_all_levels_roundtrip(self, saved, level):
        path, original = saved
        loaded = load_dataset(path, level)
        assert loaded.X.equals(original.X)
        np.testing.assert_array_equal(loaded.y, original.y)
        assert loaded.name == original.name

    def test_weights_preserved(self, tmp_path):
        rng = np.random.default_rng(0)
        X = CSRMatrix.from_rows([[(0, 1.0)], [(1, 2.0)]], n_cols=3)
        data = Dataset(
            X, np.array([0.0, 1.0], dtype=np.float32), "w",
            weights=rng.random(2),
        )
        path = tmp_path / "w.npz"
        save_dataset(data, path)
        for level in StorageLevel:
            loaded = load_dataset(path, level)
            np.testing.assert_allclose(loaded.weights, data.weights)

    def test_no_weights_stays_none(self, saved):
        path, _ = saved
        assert load_dataset(path).weights is None

    @staticmethod
    def _is_memmap_backed(arr) -> bool:
        base = arr
        while isinstance(base, np.ndarray):
            if isinstance(base, np.memmap):
                return True
            base = base.base
        return False

    def test_disk_level_is_memmap_backed(self, saved):
        path, _ = saved
        loaded = load_dataset(path, StorageLevel.DISK)
        assert self._is_memmap_backed(loaded.X.data)
        assert self._is_memmap_backed(loaded.X.indices)

    def test_memory_and_disk_splits_residency(self, saved):
        path, _ = saved
        loaded = load_dataset(path, StorageLevel.MEMORY_AND_DISK)
        # Index structures are plain in-RAM arrays...
        assert not self._is_memmap_backed(loaded.X.indptr)
        assert not self._is_memmap_backed(loaded.X.indices)
        # ...while the values stay mapped.
        assert self._is_memmap_backed(loaded.X.data)


class TestTrainOnDisk:
    def test_training_works_at_every_level(self, saved):
        from repro import GBDT, TrainConfig

        path, _ = saved
        config = TrainConfig(n_trees=2, max_depth=3)
        raws = []
        for level in StorageLevel:
            data = load_dataset(path, level)
            model = GBDT(config).fit(data)
            raws.append(model.predict_raw(data.X))
        np.testing.assert_allclose(raws[0], raws[1])
        np.testing.assert_allclose(raws[0], raws[2])


class TestValidation:
    def test_not_a_dataset_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.ones(3))
        with pytest.raises(DataError, match="missing meta"):
            load_dataset(path)

    def test_compressed_archive_rejected_for_disk(self, tmp_path, tiny_dataset):
        path = tmp_path / "compressed.npz"
        np.savez_compressed(
            path,
            indptr=tiny_dataset.X.indptr,
            indices=tiny_dataset.X.indices,
            data=tiny_dataset.X.data,
            labels=tiny_dataset.y,
            meta=np.frombuffer(
                b'{"format": "repro-dataset-npz", "version": 1, "name": "x", '
                b'"n_rows": %d, "n_cols": %d, "has_weights": false}'
                % (tiny_dataset.n_instances, tiny_dataset.n_features),
                dtype=np.uint8,
            ),
        )
        with pytest.raises(DataError, match="compressed"):
            load_dataset(path, StorageLevel.DISK)

    def test_compressed_archive_fine_for_memory(self, tmp_path, tiny_dataset):
        path = tmp_path / "compressed.npz"
        save_dataset(tiny_dataset, path)  # uncompressed, but MEMORY works
        loaded = load_dataset(path, StorageLevel.MEMORY)
        assert loaded.n_instances == tiny_dataset.n_instances
