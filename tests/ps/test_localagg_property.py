"""Property tests for local aggregation and the wire formats it folds.

Hypothesis drives :func:`repro.ps.localagg.fold_slabs` and
:class:`repro.ps.localagg.LocalAggregator` across arbitrary stripe
grids, feature-presence patterns, window sizes, and codec bit-widths,
asserting the PR's headline contract end to end: folding worker-side
then pushing one window is **bit-identical** on the servers to pushing
every delta individually — fold(deltas) → slab → (compressed) → decode
round-trips exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.lowprec import SUPPORTED_BITS
from repro.ps import (
    LocalAggregator,
    ParameterServerGroup,
    SlabLayout,
    SparseSlab,
    compress_slab,
    fold_slabs,
)
from repro.utils.rng import spawn_rng

finite_values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def layouts(draw):
    """A small histogram layout: M features, K bins, random zero bins."""
    n_features = draw(st.integers(min_value=1, max_value=6))
    n_bins = draw(st.integers(min_value=2, max_value=8))
    zero_bins = np.asarray(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n_bins - 1),
                min_size=n_features,
                max_size=n_features,
            )
        ),
        dtype=np.int64,
    )
    return SlabLayout(n_features, n_bins, zero_bins)


@st.composite
def stripes(draw, layout):
    """A feature stripe ``[col_lo, col_hi)`` of the layout's grid."""
    col_lo = draw(st.integers(min_value=0, max_value=layout.n_features - 1))
    col_hi = draw(
        st.integers(min_value=col_lo + 1, max_value=layout.n_features)
    )
    return col_lo, col_hi


@st.composite
def slabs(draw, layout, col_lo, col_hi):
    """An arbitrary slab over the stripe: any presence subset, any mass."""
    width = layout.feature_width
    stripe = list(range(col_lo, col_hi))
    present = sorted(
        draw(st.sets(st.sampled_from(stripe), min_size=0, max_size=len(stripe)))
    )
    values = np.asarray(
        draw(
            st.lists(
                finite_values,
                min_size=len(present) * width,
                max_size=len(present) * width,
            )
        ),
        dtype=np.float64,
    ).reshape(len(present), width)
    return SparseSlab(
        col_lo=col_lo,
        col_hi=col_hi,
        features=np.asarray(present, dtype=np.int64),
        values=values,
        sum_g=draw(finite_values),
        sum_h=draw(finite_values),
    )


def make_group(layout, n_servers=2):
    group = ParameterServerGroup(n_servers)
    group.register(
        "grad_hist",
        layout.row_length,
        align=layout.feature_width,
        layout=layout,
    )
    return group


def stored_row(group, row):
    flat, _stats = group.pull_row("grad_hist", row)
    return flat


@given(data=st.data())
@settings(max_examples=120, deadline=None)
def test_fold_matches_sequential_pushes_bitwise(data):
    """The fold contract: pushing fold(a, b) stores the same bits as
    pushing a then b — for every stripe, presence pattern, and partition
    split, including the closed-form reconstruction of absent features."""
    layout = data.draw(layouts())
    col_lo, col_hi = data.draw(stripes(layout))
    a = data.draw(slabs(layout, col_lo, col_hi))
    b = data.draw(slabs(layout, col_lo, col_hi))

    sequential = make_group(layout)
    sequential.push_slab("grad_hist", 0, a, seq=(0, 0))
    sequential.push_slab("grad_hist", 0, b, seq=(0, 1))

    folded_group = make_group(layout)
    folded_group.push_slab("grad_hist", 0, fold_slabs(a, b, layout), seq=(0, 0))

    np.testing.assert_array_equal(
        stored_row(sequential, 0), stored_row(folded_group, 0)
    )


@given(data=st.data())
@settings(max_examples=100, deadline=None)
def test_fold_chain_matches_sequential_pushes(data):
    """One window of k same-node deltas, folded left-to-right and pushed
    once, stores the same bits as the k deltas pushed in sequence —
    chained folding matches the server's left-fold association exactly."""
    layout = data.draw(layouts())
    col_lo, col_hi = data.draw(stripes(layout))
    n_deltas = data.draw(st.integers(min_value=1, max_value=5))
    deltas = [
        data.draw(slabs(layout, col_lo, col_hi)) for _ in range(n_deltas)
    ]

    sequential = make_group(layout)
    for token, slab in enumerate(deltas):
        sequential.push_slab("grad_hist", 0, slab, seq=(0, token))

    aggregator = LocalAggregator(n_deltas, layout)
    for slab in deltas:
        aggregator.add(0, slab)
    index, entries = aggregator.drain()
    folded_group = make_group(layout)
    folded_group.push_window("grad_hist", entries, seq=(0, index, 0))

    np.testing.assert_array_equal(
        stored_row(sequential, 0), stored_row(folded_group, 0)
    )


@given(data=st.data())
@settings(max_examples=100, deadline=None)
def test_windowed_pushes_match_per_delta_pushes(data):
    """A whole delta stream through the aggregator + push_window equals
    the same stream pushed delta by delta, for every window size.

    Nodes are distinct per delta, as in the engine: a tree node's
    histogram row receives exactly one delta per worker, so no row ever
    accumulates across two windows (cross-window accumulation would
    re-associate the float additions)."""
    layout = data.draw(layouts())
    col_lo, col_hi = data.draw(stripes(layout))
    n_deltas = data.draw(st.integers(min_value=1, max_value=8))
    deltas = [
        (node, data.draw(slabs(layout, col_lo, col_hi)))
        for node in range(n_deltas)
    ]
    window = data.draw(st.integers(min_value=1, max_value=n_deltas + 2))

    direct = make_group(layout)
    for token, (node, slab) in enumerate(deltas):
        direct.push_slab("grad_hist", node, slab, seq=(0, token))

    windowed = make_group(layout)
    aggregator = LocalAggregator(window, layout)
    for node, slab in deltas:
        if aggregator.add(node, slab):
            index, entries = aggregator.drain()
            windowed.push_window("grad_hist", entries, seq=(0, index, 0))
    index, entries = aggregator.drain()
    if entries:
        windowed.push_window("grad_hist", entries, seq=(0, index, 0))

    for node in {node for node, _slab in deltas}:
        np.testing.assert_array_equal(
            stored_row(direct, node), stored_row(windowed, node)
        )


@given(data=st.data(), bits=st.sampled_from(SUPPORTED_BITS))
@settings(max_examples=60, deadline=None)
def test_compressed_window_decode_is_deterministic(data, bits):
    """fold → compress → decode is a pure function of the wire payload:
    two servers receiving the same compressed window store identical
    bits, whatever the bit-width."""
    layout = data.draw(layouts())
    col_lo, col_hi = data.draw(stripes(layout))
    a = data.draw(slabs(layout, col_lo, col_hi))
    b = data.draw(slabs(layout, col_lo, col_hi))
    folded = fold_slabs(a, b, layout)
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    wire = compress_slab(
        folded, layout, bits, spawn_rng(seed, "lowprec", 0, 0, 0)
    )

    first = make_group(layout)
    first.push_window("grad_hist", [(0, wire)], seq=(0, 0, 0))
    second = make_group(layout)
    second.push_window("grad_hist", [(0, wire)], seq=(0, 0, 0))
    np.testing.assert_array_equal(stored_row(first, 0), stored_row(second, 0))


@given(data=st.data(), bits=st.sampled_from(SUPPORTED_BITS))
@settings(max_examples=60, deadline=None)
def test_closed_form_mass_survives_compression_exactly(data, bits):
    """A folded slab whose residual is zero (all mass in the zero-bucket
    closed form) compresses to an exactly-restoring payload: the codec
    moves only residuals, the header sums stay full-precision floats."""
    layout = data.draw(layouts())
    col_lo, col_hi = data.draw(stripes(layout))
    width = layout.feature_width
    sum_g = data.draw(finite_values)
    sum_h = data.draw(finite_values)
    present = np.arange(col_lo, col_hi, dtype=np.int64)
    values = np.zeros((present.size, width), dtype=np.float64)
    rows = np.arange(present.size)
    values[rows, layout.zero_bins[present]] = sum_g
    values[rows, layout.n_bins + layout.zero_bins[present]] = sum_h
    slab = SparseSlab(
        col_lo=col_lo,
        col_hi=col_hi,
        features=present,
        values=values,
        sum_g=sum_g,
        sum_h=sum_h,
    )
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    wire = compress_slab(slab, layout, bits, np.random.default_rng(seed))

    exact = make_group(layout)
    exact.push_slab("grad_hist", 0, slab, seq=(0, 0))
    decoded = make_group(layout)
    decoded.push_window("grad_hist", [(0, wire)], seq=(0, 0, 0))
    np.testing.assert_array_equal(stored_row(exact, 0), stored_row(decoded, 0))


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_window_size_never_changes_stored_bits(data):
    """Any two window sizes store identical bits for the same stream —
    the knob is pure communication scheduling.  Nodes are distinct per
    delta (the engine's shape; see above)."""
    layout = data.draw(layouts())
    col_lo, col_hi = data.draw(stripes(layout))
    n_deltas = data.draw(st.integers(min_value=1, max_value=6))
    deltas = [
        (node, data.draw(slabs(layout, col_lo, col_hi)))
        for node in range(n_deltas)
    ]
    w1 = data.draw(st.integers(min_value=1, max_value=n_deltas))
    w2 = data.draw(st.integers(min_value=1, max_value=n_deltas))

    def run(window):
        group = make_group(layout)
        aggregator = LocalAggregator(window, layout)
        for node, slab in deltas:
            if aggregator.add(node, slab):
                index, entries = aggregator.drain()
                group.push_window("grad_hist", entries, seq=(0, index, 0))
        index, entries = aggregator.drain()
        if entries:
            group.push_window("grad_hist", entries, seq=(0, index, 0))
        return {
            node: stored_row(group, node)
            for node in {node for node, _slab in deltas}
        }

    first, second = run(w1), run(w2)
    assert first.keys() == second.keys()
    for node, flat in first.items():
        np.testing.assert_array_equal(flat, second[node])


@given(
    window=st.integers(min_value=1, max_value=5),
    n_deltas=st.integers(min_value=0, max_value=12),
)
def test_aggregator_window_accounting(window, n_deltas):
    """``add`` reports fullness exactly at multiples of the window and
    ``drain`` numbers windows densely from zero."""
    layout = SlabLayout(2, 3, np.zeros(2, dtype=np.int64))
    aggregator = LocalAggregator(window, layout)
    empty = SparseSlab(
        col_lo=0,
        col_hi=2,
        features=np.empty(0, dtype=np.int64),
        values=np.empty((0, 6), dtype=np.float64),
        sum_g=0.0,
        sum_h=0.0,
    )
    drained = []
    for i in range(n_deltas):
        full = aggregator.add(i % 3, empty)
        assert full == (aggregator.pending >= window)
        if full:
            index, entries = aggregator.drain()
            drained.append(index)
            assert entries
            assert aggregator.pending == 0
    assert drained == list(range(len(drained)))
    index, entries = aggregator.drain()
    if entries:
        assert index == len(drained)
    else:
        # An empty drain consumes no window index.
        assert index == len(drained)
        assert aggregator.windows_flushed == len(drained)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
