"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture()
def dataset_file(tmp_path):
    path = tmp_path / "data.libsvm"
    code = main(
        ["generate", "--preset", "rcv1", "--scale", "0.05", "--out", str(path)]
    )
    assert code == 0
    return path


@pytest.fixture()
def model_file(dataset_file, tmp_path):
    path = tmp_path / "model.json"
    code = main(
        [
            "train",
            str(dataset_file),
            "--model",
            str(path),
            "--trees",
            "3",
            "--depth",
            "4",
            "--learning-rate",
            "0.3",
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_libsvm(self, dataset_file):
        lines = dataset_file.read_text().strip().splitlines()
        assert len(lines) > 100
        assert lines[0].split()[0] in ("0", "1")

    def test_all_presets(self, tmp_path):
        for preset in ("rcv1", "synthesis", "gender", "lowdim"):
            out = tmp_path / f"{preset}.libsvm"
            assert main(
                ["generate", "--preset", preset, "--scale", "0.02", "--out", str(out)]
            ) == 0
            assert out.exists()


class TestTrain:
    def test_model_is_valid_json(self, model_file):
        payload = json.loads(model_file.read_text())
        assert payload["format"] == "repro-dimboost-gbdt"
        assert len(payload["trees"]) == 3

    def test_distributed_training(self, dataset_file, tmp_path):
        model_path = tmp_path / "dist.json"
        code = main(
            [
                "train",
                str(dataset_file),
                "--model",
                str(model_path),
                "--system",
                "dimboost",
                "--workers",
                "3",
                "--servers",
                "3",
                "--trees",
                "2",
                "--depth",
                "3",
            ]
        )
        assert code == 0
        assert model_path.exists()

    def test_bad_loss_rejected(self, dataset_file, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "train",
                    str(dataset_file),
                    "--model",
                    str(tmp_path / "m.json"),
                    "--loss",
                    "hinge",
                ]
            )


class TestPredict:
    def test_predictions_file(self, model_file, dataset_file, tmp_path):
        out = tmp_path / "scores.txt"
        code = main(["predict", str(model_file), str(dataset_file), "--out", str(out)])
        assert code == 0
        scores = np.loadtxt(out)
        assert len(scores) == len(dataset_file.read_text().strip().splitlines())
        assert np.all((scores >= 0) & (scores <= 1))

    def test_predictions_stdout(self, model_file, dataset_file, capsys):
        code = main(["predict", str(model_file), str(dataset_file)])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) > 100


class TestEvaluate:
    def test_metrics_printed(self, model_file, dataset_file, capsys):
        code = main(["evaluate", str(model_file), str(dataset_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "error rate" in out
        assert "AUC" in out

    def test_missing_model(self, dataset_file, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["evaluate", str(tmp_path / "nope.json"), str(dataset_file)])


class TestCompare:
    def test_subset_of_systems(self, dataset_file, capsys):
        code = main(
            [
                "compare",
                str(dataset_file),
                "--workers",
                "2",
                "--systems",
                "xgboost,dimboost",
                "--trees",
                "2",
                "--depth",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "xgboost" in out
        assert "dimboost speedup vs xgboost" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
