"""Gradient histograms and their construction (Section 5).

Contents:

* :class:`GradientHistogram` — the ``(n_features x n_bins)`` first/second
  order gradient summary of one tree node (Section 2.2, Algorithm 1).
* :class:`BinnedShard` — a worker's data shard with every nonzero
  pre-bucketized against the split candidates (the ``indexOf(f, v)``
  lookups of Algorithm 2, done once).
* dense ("traditional") and sparsity-aware builders (Section 5.1,
  Algorithm 2).
* :class:`NodeInstanceIndex` — the node-to-instance index of Section 5.2
  (Figure 9).
* parallel batch construction of a single histogram (Section 5.2) with
  real threads plus the simulated-parallel span account.
* :class:`SharedShard` — the shard plus per-round gradients in
  shared memory, so worker *processes* build batches on real cores
  without pickling the data.
* :class:`HistogramBufferPool` — recycled histogram buffers for the hot
  build-flatten-discard paths.
"""

from .histogram import GradientHistogram
from .binned import BinnedShard
from .buffers import HistogramBufferPool
from .builder import build_node_histogram_dense, build_node_histogram_sparse
from .index import NodeInstanceIndex
from .parallel import ParallelBuildResult, build_histogram_batched
from .shared import SharedShard

__all__ = [
    "GradientHistogram",
    "BinnedShard",
    "HistogramBufferPool",
    "build_node_histogram_dense",
    "build_node_histogram_sparse",
    "NodeInstanceIndex",
    "ParallelBuildResult",
    "build_histogram_batched",
    "SharedShard",
]
