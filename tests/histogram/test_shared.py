"""Tests for shared-memory shards, the buffer pool, and the process strategy.

Cross-strategy bit-identity needs exact arithmetic: the process strategy
merges per-chunk partial histograms, so per-bucket sums happen in a
different order than the serial kernel's.  The gradients here are dyadic
rationals (small integers over a power of two), for which float64
addition is exact in any order — making ``np.array_equal`` a fair
assertion across sequential, threaded, and process-pool builds.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro import ClusterConfig, TrainConfig
from repro.histogram import (
    GradientHistogram,
    HistogramBufferPool,
    SharedShard,
    build_node_histogram_sparse,
)
from repro.histogram.binned import BinnedShard
from repro.histogram.shared import SHM_PREFIX, build_into_slot
from repro.runtime.build import (
    BatchedBuildStrategy,
    ProcessParallelBuildStrategy,
    SparseBuildStrategy,
)
from tests.conftest import make_matrix


def dyadic_gradients(n_rows: int, seed: int = 3):
    """Gradient/hessian vectors whose sums are exact in any order."""
    rng = np.random.default_rng(seed)
    grad = rng.integers(-512, 512, size=n_rows).astype(np.float64) / 1024.0
    hess = rng.integers(1, 512, size=n_rows).astype(np.float64) / 1024.0
    return grad, hess


def leaked_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SHM_PREFIX}*")


def assert_identical(a: GradientHistogram, b: GradientHistogram) -> None:
    assert np.array_equal(a.grad, b.grad)
    assert np.array_equal(a.hess, b.hess)


@pytest.fixture()
def process_strategy():
    """A 2-process strategy with a small batch size, closed after the test."""
    strategy = ProcessParallelBuildStrategy(batch_size=32, n_processes=2)
    yield strategy
    strategy.close()


class TestSharedShard:
    def test_roundtrip_arrays(self, tiny_shard):
        with SharedShard(tiny_shard, n_slots=2) as shared:
            manifest = shared.manifest
            assert manifest["n_rows"] == tiny_shard.n_rows
            for name in ("indptr", "features", "slots", "row_of", "zero_slots"):
                segment_name, shape, dtype = manifest["arrays"][name]
                assert segment_name.startswith(shared.token)
                original = getattr(tiny_shard, name)
                assert tuple(shape) == original.shape
                assert np.dtype(dtype) == original.dtype

    def test_build_into_slot_matches_kernel(self, tiny_shard):
        grad, hess = dyadic_gradients(tiny_shard.n_rows)
        rows = np.arange(tiny_shard.n_rows, dtype=np.int64)
        reference = build_node_histogram_sparse(tiny_shard, rows, grad, hess)
        with SharedShard(tiny_shard, n_slots=1) as shared:
            shared.set_gradients(grad, hess)
            # In-process call: the worker path attaches via the manifest
            # exactly like a pool worker would.
            seconds = build_into_slot(shared.manifest, 0, rows, sparse=True)
            assert seconds >= 0.0
            assert_identical(shared.reduce(1), reference)

    def test_reduce_sums_slots_in_order(self, tiny_shard):
        grad, hess = dyadic_gradients(tiny_shard.n_rows)
        rows = np.arange(tiny_shard.n_rows, dtype=np.int64)
        reference = build_node_histogram_sparse(tiny_shard, rows, grad, hess)
        with SharedShard(tiny_shard, n_slots=2) as shared:
            shared.set_gradients(grad, hess)
            half = tiny_shard.n_rows // 2
            build_into_slot(shared.manifest, 0, rows[:half], sparse=True)
            build_into_slot(shared.manifest, 1, rows[half:], sparse=True)
            assert_identical(shared.reduce(2), reference)

    def test_close_releases_segments(self, tiny_shard):
        before = set(leaked_segments())
        shared = SharedShard(tiny_shard, n_slots=1)
        created = set(leaked_segments()) - before
        assert created  # /dev/shm is the POSIX shm mount on Linux
        assert all(shared.token in path for path in created)
        shared.close()
        shared.close()  # idempotent
        assert set(leaked_segments()) == before

    def test_invalid_n_slots(self, tiny_shard):
        with pytest.raises(ValueError):
            SharedShard(tiny_shard, n_slots=0)


class TestBufferPool:
    def test_acquire_release_recycles(self):
        pool = HistogramBufferPool()
        first = pool.acquire(4, 3)
        assert pool.misses == 1
        pool.release(first)
        assert pool.n_free == 1
        second = pool.acquire(4, 3)
        assert second is first
        assert pool.hits == 1

    def test_layouts_kept_apart(self):
        pool = HistogramBufferPool()
        pool.release(GradientHistogram.zeros(4, 3))
        other = pool.acquire(5, 3)
        assert other.n_features == 5
        assert pool.hits == 0 and pool.n_free == 1

    def test_clear(self):
        pool = HistogramBufferPool()
        pool.release(GradientHistogram.zeros(2, 2))
        pool.clear()
        assert pool.n_free == 0

    def test_pooled_strategy_overwrites_reused_buffer(self, tiny_shard):
        """A recycled (dirty) buffer must not bleed into the next build."""
        grad, hess = dyadic_gradients(tiny_shard.n_rows)
        rows = np.arange(tiny_shard.n_rows, dtype=np.int64)
        reference = build_node_histogram_sparse(tiny_shard, rows, grad, hess)
        strategy = SparseBuildStrategy(pool=HistogramBufferPool())
        first, _ = strategy.build(tiny_shard, rows, grad, hess)
        first.grad.fill(np.nan)  # poison, then recycle
        strategy.release(first)
        second, _ = strategy.build(tiny_shard, rows, grad, hess)
        assert second is first
        assert_identical(second, reference)


class TestProcessStrategyIdentity:
    def test_identical_across_all_strategies(self, tiny_shard, process_strategy):
        grad, hess = dyadic_gradients(tiny_shard.n_rows)
        rows = np.arange(tiny_shard.n_rows, dtype=np.int64)
        sequential, _ = SparseBuildStrategy().build(tiny_shard, rows, grad, hess)
        threaded, _ = BatchedBuildStrategy(
            batch_size=32, n_threads=2, sparse=True, real_threads=True
        ).build(tiny_shard, rows, grad, hess)
        pooled, _ = process_strategy.build(tiny_shard, rows, grad, hess)
        assert process_strategy.last_result is not None
        assert process_strategy.last_result.backend == "process"
        assert_identical(threaded, sequential)
        assert_identical(pooled, sequential)

    def test_empty_node(self, tiny_shard, process_strategy):
        grad, hess = dyadic_gradients(tiny_shard.n_rows)
        rows = np.array([], dtype=np.int64)
        sequential, _ = SparseBuildStrategy().build(tiny_shard, rows, grad, hess)
        pooled, _ = process_strategy.build(tiny_shard, rows, grad, hess)
        assert_identical(pooled, sequential)

    def test_all_zero_rows_node(self, process_strategy):
        """Rows whose CSR slices are empty still settle the zero buckets."""
        rows_spec = [[(0, 1.0)], [], [], [], [], [], [], []]
        matrix = make_matrix(rows_spec, n_cols=3)
        from repro.sketch.candidates import propose_candidates

        shard = BinnedShard(matrix, propose_candidates(matrix, max_bins=4))
        grad, hess = dyadic_gradients(shard.n_rows)
        rows = np.arange(1, shard.n_rows, dtype=np.int64)  # all-zero rows only
        sequential, _ = SparseBuildStrategy().build(shard, rows, grad, hess)
        strategy = ProcessParallelBuildStrategy(batch_size=2, n_processes=2)
        try:
            pooled, _ = strategy.build(shard, rows, grad, hess)
            assert_identical(pooled, sequential)
        finally:
            strategy.close()

    def test_single_feature_shard(self):
        rows_spec = [[(0, float(i % 5))] if i % 2 else [] for i in range(40)]
        matrix = make_matrix(rows_spec, n_cols=1)
        from repro.sketch.candidates import propose_candidates

        shard = BinnedShard(matrix, propose_candidates(matrix, max_bins=4))
        grad, hess = dyadic_gradients(shard.n_rows)
        rows = np.arange(shard.n_rows, dtype=np.int64)
        sequential, _ = SparseBuildStrategy().build(shard, rows, grad, hess)
        strategy = ProcessParallelBuildStrategy(batch_size=8, n_processes=2)
        try:
            pooled, _ = strategy.build(shard, rows, grad, hess)
            assert_identical(pooled, sequential)
        finally:
            strategy.close()

    def test_gradient_refresh_between_rounds(self, tiny_shard, process_strategy):
        """New gradient arrays must be recopied into shared memory."""
        grad, hess = dyadic_gradients(tiny_shard.n_rows)
        rows = np.arange(tiny_shard.n_rows, dtype=np.int64)
        process_strategy.build(tiny_shard, rows, grad, hess)
        grad2, hess2 = dyadic_gradients(tiny_shard.n_rows, seed=9)
        sequential, _ = SparseBuildStrategy().build(
            tiny_shard, rows, grad2, hess2
        )
        pooled, _ = process_strategy.build(tiny_shard, rows, grad2, hess2)
        assert_identical(pooled, sequential)


class TestProcessStrategyLifecycle:
    def test_small_node_stays_sequential(self, tiny_shard):
        grad, hess = dyadic_gradients(tiny_shard.n_rows)
        strategy = ProcessParallelBuildStrategy(batch_size=10_000, n_processes=4)
        try:
            rows = np.arange(tiny_shard.n_rows, dtype=np.int64)
            histogram, _ = strategy.build(tiny_shard, rows, grad, hess)
            # One batch: no pool was started, no telemetry recorded.
            assert strategy.last_result is None
            assert strategy._executor is None
            sequential, _ = SparseBuildStrategy().build(
                tiny_shard, rows, grad, hess
            )
            assert_identical(histogram, sequential)
        finally:
            strategy.close()

    def test_close_releases_everything(self, tiny_shard):
        before = set(leaked_segments())
        strategy = ProcessParallelBuildStrategy(batch_size=32, n_processes=2)
        grad, hess = dyadic_gradients(tiny_shard.n_rows)
        rows = np.arange(tiny_shard.n_rows, dtype=np.int64)
        strategy.build(tiny_shard, rows, grad, hess)
        assert set(leaked_segments()) != before  # segments live while open
        strategy.close()
        assert set(leaked_segments()) == before
        assert strategy._executor is None

    def test_worker_exception_propagates_and_segments_release(self, tiny_shard):
        before = set(leaked_segments())
        strategy = ProcessParallelBuildStrategy(batch_size=32, n_processes=2)
        grad, hess = dyadic_gradients(tiny_shard.n_rows)
        bad_rows = np.full(80, tiny_shard.n_rows + 5, dtype=np.int64)
        try:
            with pytest.raises(IndexError):
                strategy.build(tiny_shard, bad_rows, grad, hess)
        finally:
            strategy.close()
        assert set(leaked_segments()) == before

    def test_invalid_n_processes(self):
        with pytest.raises(ValueError):
            ProcessParallelBuildStrategy(batch_size=32, n_processes=0)

    def test_release_feeds_buffer_pool(self, tiny_shard, process_strategy):
        grad, hess = dyadic_gradients(tiny_shard.n_rows)
        rows = np.arange(tiny_shard.n_rows, dtype=np.int64)
        histogram, _ = process_strategy.build(tiny_shard, rows, grad, hess)
        process_strategy.release(histogram)
        assert process_strategy.pool.n_free == 1

    def test_telemetry_fields(self, tiny_shard, process_strategy):
        grad, hess = dyadic_gradients(tiny_shard.n_rows)
        rows = np.arange(tiny_shard.n_rows, dtype=np.int64)
        process_strategy.build(tiny_shard, rows, grad, hess)
        result = process_strategy.last_result
        assert result.n_batches == 2
        assert len(result.batch_seconds) == 2
        assert result.serial_seconds == pytest.approx(sum(result.batch_seconds))
        assert result.wall_seconds > 0.0
        assert result.real_speedup > 0.0


class TestEngineIntegration:
    def test_distributed_fit_with_process_backend(self, tiny_dataset):
        """A full distributed fit on the process backend grows the same
        trees as the simulated backend and leaks no shared memory.

        Real logistic gradients are not dyadic, so the chunked merge may
        drift by a few ULPs — structure must match exactly, leaf weights
        and predictions to float tolerance.
        """
        from repro.distributed.engine import DistributedGBDT

        before = set(leaked_segments())
        base_config = TrainConfig(
            n_trees=2,
            max_depth=3,
            n_split_candidates=8,
            compression_bits=0,
            batch_size=32,
        )
        cluster = ClusterConfig(2, 2)
        reference = DistributedGBDT("dimboost", cluster, base_config).fit(
            tiny_dataset
        )
        process_config = base_config.with_overrides(
            parallel_backend="process", n_processes=2
        )
        result = DistributedGBDT("dimboost", cluster, process_config).fit(
            tiny_dataset
        )
        assert set(leaked_segments()) == before
        for ref_tree, tree in zip(reference.model.trees, result.model.trees):
            ref_nodes = ref_tree.to_dict()["nodes"]
            nodes = tree.to_dict()["nodes"]
            assert [n["id"] for n in ref_nodes] == [n["id"] for n in nodes]
            assert [n.get("feature") for n in ref_nodes] == [
                n.get("feature") for n in nodes
            ]
        np.testing.assert_allclose(
            reference.model.predict(tiny_dataset.X),
            result.model.predict(tiny_dataset.X),
            rtol=1e-9,
        )
