"""Single-machine GBDT trainer — the reference implementation.

This is the w=1 ground truth the distributed trainers are tested
against: with exact aggregation every system must grow the *same trees*
as this trainer, because the merged histograms are identical.

The training loop follows Section 2.2: start from the loss's base score,
and per round compute gradients at the current predictions, sample
features (Section 2.2's feature sampling), grow one layer-wise tree, and
add its shrunk predictions to the running scores — using the free
leaf-assignment from the node-to-instance index instead of re-running
tree inference on the training set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import TrainConfig
from ..datasets.dataset import Dataset
from ..errors import TrainingError
from ..histogram.binned import BinnedShard
from ..sketch.candidates import CandidateSet, propose_candidates
from ..tree.grower import LayerwiseGrower
from ..utils.rng import spawn_rng
from .losses import get_loss
from .metrics import error_rate
from .model import GBDTModel


@dataclass
class BoostingRound:
    """Per-round telemetry recorded during training.

    Attributes:
        tree_index: 0-based boosting round.
        train_loss: Loss over the training set after this round.
        train_error: Classification error (logistic) or MSE (squared).
        seconds: Wall-clock time the round took.
        elapsed_seconds: Cumulative wall-clock since fit() started —
            the x-axis of the paper's convergence plots (Figure 12).
        n_histograms: Histograms built this round.
        eval_loss: Loss over the eval set, when one was provided.
        eval_error: Error over the eval set, when one was provided.
    """

    tree_index: int
    train_loss: float
    train_error: float
    seconds: float
    elapsed_seconds: float
    n_histograms: int
    eval_loss: float | None = None
    eval_error: float | None = None


def sample_features(
    n_features: int, ratio: float, rng: np.random.Generator
) -> np.ndarray:
    """Per-tree feature sampling mask (Section 2.2).

    Returns a boolean mask with ``ceil(ratio * n_features)`` features
    enabled; with ratio 1.0 the mask is all-True (no sampling).
    """
    if not 0.0 < ratio <= 1.0:
        raise TrainingError(f"feature sample ratio must be in (0, 1], got {ratio}")
    if ratio >= 1.0:
        return np.ones(n_features, dtype=bool)
    n_sampled = max(1, int(np.ceil(ratio * n_features)))
    mask = np.zeros(n_features, dtype=bool)
    mask[rng.choice(n_features, size=n_sampled, replace=False)] = True
    return mask


@dataclass
class GBDT:
    """Single-machine GBDT trainer.

    Usage::

        trainer = GBDT(TrainConfig(n_trees=20, max_depth=7))
        model = trainer.fit(train_dataset)
        proba = model.predict(test_dataset.X)

    Attributes:
        config: Hyper-parameters.
        sparse_build: Histogram builder choice (Algorithm 2 vs dense).
        use_index: Node-to-instance index on/off (ablation hook).
        subtraction: Derive sibling histograms as parent minus child
            (extension; halves per-layer build work).
        history: Per-round telemetry, populated by :meth:`fit`.
    """

    config: TrainConfig = field(default_factory=TrainConfig)
    sparse_build: bool = True
    use_index: bool = True
    subtraction: bool = False
    leaf_wise: bool = False
    max_leaves: int | None = None
    history: list[BoostingRound] = field(default_factory=list)

    def fit(
        self,
        train: Dataset,
        candidates: CandidateSet | None = None,
        eval_set: Dataset | None = None,
        early_stopping_rounds: int | None = None,
    ) -> GBDTModel:
        """Train on ``train`` and return the model.

        Args:
            train: Training dataset.
            candidates: Precomputed split candidates; proposed from exact
                per-feature quantiles when omitted.
            eval_set: Optional held-out dataset evaluated after every
                round (recorded in :attr:`history`).
            early_stopping_rounds: Stop when the eval loss has not
                improved for this many consecutive rounds, and truncate
                the model to its best round.  Requires ``eval_set``.
        """
        config = self.config
        if early_stopping_rounds is not None:
            if eval_set is None:
                raise TrainingError("early stopping requires an eval_set")
            if early_stopping_rounds < 1:
                raise TrainingError(
                    f"early_stopping_rounds must be >= 1, got "
                    f"{early_stopping_rounds}"
                )
        loss = get_loss(config.loss)
        start = time.perf_counter()
        if candidates is None:
            candidates = propose_candidates(train.X, config.n_split_candidates)
        shard = BinnedShard(train.X, candidates)
        if self.leaf_wise:
            from ..tree.bestfirst import BestFirstGrower

            grower: LayerwiseGrower | BestFirstGrower = BestFirstGrower(
                shard, candidates, config, max_leaves=self.max_leaves
            )
        else:
            grower = LayerwiseGrower(
                shard,
                candidates,
                config,
                sparse_build=self.sparse_build,
                use_index=self.use_index,
                subtraction=self.subtraction,
            )

        base = loss.base_score(train.y, train.weights)
        raw = np.full(train.n_instances, base, dtype=np.float64)
        eval_raw = (
            np.full(eval_set.n_instances, base, dtype=np.float64)
            if eval_set is not None
            else None
        )
        trees = []
        self.history = []
        best_eval = np.inf
        best_round = -1

        for t in range(config.n_trees):
            round_start = time.perf_counter()
            grad, hess = loss.gradients(train.y, raw, train.weights)
            mask = sample_features(
                train.n_features,
                config.feature_sample_ratio,
                spawn_rng(config.seed, "feature_sampling", t),
            )
            grown = grower.grow(grad, hess, feature_valid=mask)
            trees.append(grown.tree)
            # Training predictions come free from the leaf assignment.
            raw += grown.tree.weight[grown.leaf_of_rows]
            eval_loss = eval_error = None
            if eval_set is not None and eval_raw is not None:
                eval_raw += grown.tree.predict(eval_set.X)
                eval_loss = loss.loss(eval_set.y, eval_raw)
                eval_error = self._error(loss, eval_set.y, eval_raw)
                if eval_loss < best_eval - 1e-12:
                    best_eval = eval_loss
                    best_round = t
            now = time.perf_counter()
            self.history.append(
                BoostingRound(
                    tree_index=t,
                    train_loss=loss.loss(train.y, raw, train.weights),
                    train_error=self._error(loss, train.y, raw),
                    seconds=now - round_start,
                    elapsed_seconds=now - start,
                    n_histograms=grown.n_histograms,
                    eval_loss=eval_loss,
                    eval_error=eval_error,
                )
            )
            if (
                early_stopping_rounds is not None
                and t - best_round >= early_stopping_rounds
            ):
                break

        if early_stopping_rounds is not None and best_round >= 0:
            trees = trees[: best_round + 1]

        return GBDTModel(
            trees=trees,
            base_score=base,
            loss_name=config.loss,
            n_features=train.n_features,
        )

    @staticmethod
    def _error(loss, y: np.ndarray, raw: np.ndarray) -> float:
        if loss.name == "logistic":
            return error_rate(y, loss.transform(raw))
        return loss.loss(y, raw)
