"""Figure 12(c) — end-to-end comparison on the Gender-like dataset.

The production-cluster experiment.  The paper runs 50 machines and
excludes LightGBM ("it fails to support our production environment");
we keep that exclusion and use 10 workers (memory of a single-process
simulation bounds w x histogram storage — see DESIGN.md).

Paper shape: DimBoost 8.5x over XGBoost and 3x over TencentBoost; MLlib
cannot finish in endurable time (it is the slowest of all here).
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, TrainConfig
from repro.datasets import gender_like

from bench_fig12a_rcv1 import run_systems, summarize
from conftest import bench_scale

SYSTEMS = ("mllib", "xgboost", "tencentboost", "dimboost")


def test_fig12c_gender(benchmark, report):
    scale = bench_scale()
    data = gender_like(scale=0.25 * scale, seed=0)
    cluster = ClusterConfig(n_workers=10, n_servers=10)
    config = TrainConfig(
        n_trees=5, max_depth=6, n_split_candidates=20, learning_rate=0.1
    )

    outcomes = benchmark.pedantic(
        lambda: run_systems(data, cluster, config, SYSTEMS),
        rounds=1,
        iterations=1,
    )
    summarize(
        report,
        "Figure 12(c): Gender-like end-to-end (10 workers, no LightGBM)",
        outcomes,
        notes=f"n={data.n_instances}, m={data.n_features}",
    )
    times = {s: r.sim_seconds for s, (r, _e) in outcomes.items()}
    assert times["dimboost"] == min(times.values())
    assert times["mllib"] == max(times.values())
    assert times["xgboost"] / times["dimboost"] > 4.0
    assert times["tencentboost"] / times["dimboost"] > 1.5
