"""Known-good RP006 twin: the seq token is threaded end to end."""

import numpy as np


class Server:
    def __init__(self) -> None:
        self._rows: dict = {}
        self._applied: dict = {}

    def handle_push(self, name, row, values, seq=None):
        if seq is not None:
            applied = self._applied.setdefault((name, row), set())
            if seq in applied:
                return
            applied.add(seq)
        stored = self._rows.get((name, row))
        if stored is None:
            self._rows[(name, row)] = values.copy()
        else:
            stored += values


class SketchServer:
    def __init__(self) -> None:
        self._sketches: dict = {}
        self._applied: dict = {}

    def handle_push_sketch(self, name, partition_id, payloads, seq=None):
        if seq is not None:
            applied = self._applied.setdefault((name, partition_id), set())
            if seq in applied:
                return
            applied.add(seq)
        for feature, payload in payloads:
            self._sketches[(name, feature)] = payload


class WindowServer:
    def __init__(self) -> None:
        self._rows: dict = {}
        self._applied: dict = {}

    def handle_push_window(self, name, entries, seq=None):
        if seq is not None:
            if seq in self._applied.setdefault(name, set()):
                return
            self._applied[name].add(seq)
        for row, slab in entries:
            self._rows[(name, row)] = slab


class Group:
    def __init__(self, server: Server) -> None:
        self.server = server

    def push_row(
        self, name: str, row: int, values: np.ndarray, seq: object | None = None
    ) -> None:
        self.server.handle_push(name, row, values, seq=seq)

    def push_sketch(
        self, name: str, sketches: dict, seq: object | None = None
    ) -> None:
        payloads = sorted(sketches.items())
        self.server.handle_push_sketch(name, 0, payloads, seq=seq)

    def push_window(
        self, name: str, entries: list, seq: object | None = None
    ) -> None:
        self.server.handle_push_window(name, entries, seq=seq)

    def push_window_rows(
        self, name: str, entries: list, seq: object | None = None
    ) -> None:
        for row, _partition, piece, _nbytes in entries:
            self.server.handle_push(name, row, piece, seq=seq)
