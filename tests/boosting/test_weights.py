"""Tests for per-instance weight support."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, GBDT, TrainConfig, train_distributed
from repro.boosting.losses import LogisticLoss, SquaredLoss
from repro.datasets import CSRMatrix, Dataset
from repro.errors import DataError


def weighted_dataset(n=400, m=30, seed=0):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, m)) < 0.4) * rng.random((n, m))
    y = (dense[:, 2] > 0.3).astype(np.float32)
    weights = rng.uniform(0.5, 2.0, size=n)
    return Dataset(
        CSRMatrix.from_dense(dense.astype(np.float32)), y, "weighted", weights
    )


class TestDatasetWeights:
    def test_validation_shape(self):
        X = CSRMatrix.from_rows([[(0, 1.0)], []], n_cols=2)
        with pytest.raises(DataError, match="weights"):
            Dataset(X, np.zeros(2, dtype=np.float32), weights=np.ones(3))

    def test_validation_negative(self):
        X = CSRMatrix.from_rows([[(0, 1.0)], []], n_cols=2)
        with pytest.raises(DataError, match="non-negative"):
            Dataset(X, np.zeros(2, dtype=np.float32), weights=np.array([1.0, -1.0]))

    def test_take_carries_weights(self):
        data = weighted_dataset(10)
        sub = data.take(np.array([3, 7]))
        np.testing.assert_array_equal(sub.weights, data.weights[[3, 7]])

    def test_first_features_carries_weights(self):
        data = weighted_dataset(10)
        sub = data.first_features(5)
        np.testing.assert_array_equal(sub.weights, data.weights)

    def test_partition_carries_weights(self):
        from repro.datasets import partition_rows

        data = weighted_dataset(10)
        shards = partition_rows(data, 2)
        combined = np.concatenate([s.weights for s in shards])
        np.testing.assert_array_equal(combined, data.weights)


class TestWeightedLosses:
    def test_logistic_gradients_scaled(self):
        loss = LogisticLoss()
        y = np.array([1.0, 0.0])
        raw = np.array([0.0, 0.0])
        w = np.array([2.0, 0.5])
        g_plain, h_plain = loss.gradients(y, raw)
        g_w, h_w = loss.gradients(y, raw, w)
        np.testing.assert_allclose(g_w, g_plain * w)
        np.testing.assert_allclose(h_w, h_plain * w)

    def test_weighted_base_score(self):
        loss = LogisticLoss()
        y = np.array([1.0, 0.0])
        # Weight 3:1 toward the positive: prior = 0.75.
        base = loss.base_score(y, np.array([3.0, 1.0]))
        assert base == pytest.approx(np.log(3.0))

    def test_squared_weighted_mean(self):
        loss = SquaredLoss()
        y = np.array([0.0, 10.0])
        assert loss.base_score(y, np.array([1.0, 3.0])) == pytest.approx(7.5)

    def test_integer_weights_equal_duplication(self):
        """Weight 2 must equal duplicating the instance (for gradients)."""
        loss = LogisticLoss()
        y = np.array([1.0, 0.0])
        raw = np.array([0.3, -0.2])
        w = np.array([2.0, 1.0])
        g_w, h_w = loss.gradients(y, raw, w)
        y_dup = np.array([1.0, 1.0, 0.0])
        raw_dup = np.array([0.3, 0.3, -0.2])
        g_dup, h_dup = loss.gradients(y_dup, raw_dup)
        assert g_w[0] == pytest.approx(g_dup[0] + g_dup[1])
        assert h_w[0] == pytest.approx(h_dup[0] + h_dup[1])

    def test_zero_total_weight(self):
        loss = SquaredLoss()
        assert loss.loss(np.ones(2), np.zeros(2), np.zeros(2)) == 0.0


class TestWeightedTraining:
    def test_weight_2_equals_duplication(self):
        """Training with weight 2 == training with the row duplicated."""
        rng = np.random.default_rng(1)
        dense = (rng.random((100, 10)) < 0.5) * rng.random((100, 10))
        y = (dense[:, 1] > 0.3).astype(np.float32)
        X = CSRMatrix.from_dense(dense.astype(np.float32))

        weights = np.ones(100)
        weights[:20] = 2.0
        weighted = Dataset(X, y, "w", weights)

        dup_ids = np.concatenate([np.arange(100), np.arange(20)])
        duplicated = Dataset(
            X.take_rows(dup_ids), y[dup_ids], "dup"
        )

        config = TrainConfig(n_trees=2, max_depth=3, learning_rate=0.3)
        # Fix one candidate grid for both runs: duplication changes the
        # quantile positions, which is a binning artifact, not a weight
        # semantics difference.
        from repro.sketch import propose_candidates

        candidates = propose_candidates(X, config.n_split_candidates)
        m_w = GBDT(config).fit(weighted, candidates=candidates)
        m_d = GBDT(config).fit(duplicated, candidates=candidates)
        for tw, td in zip(m_w.trees, m_d.trees):
            np.testing.assert_array_equal(tw.split_feature, td.split_feature)
            np.testing.assert_allclose(tw.weight, td.weight, atol=1e-8)

    def test_weights_change_the_model(self):
        data = weighted_dataset()
        unweighted = Dataset(data.X, data.y, "plain")
        config = TrainConfig(n_trees=3, max_depth=4, learning_rate=0.3)
        m_w = GBDT(config).fit(data)
        m_p = GBDT(config).fit(unweighted)
        assert not np.allclose(
            m_w.predict_raw(data.X), m_p.predict_raw(data.X)
        )

    def test_distributed_weighted_matches_single(self):
        data = weighted_dataset()
        config = TrainConfig(
            n_trees=2, max_depth=3, learning_rate=0.3, n_split_candidates=8
        )
        single = GBDT(config).fit(data)
        dist = train_distributed(
            "dimboost",
            data,
            ClusterConfig(n_workers=4, n_servers=4),
            config,
            compression_bits=0,
        )
        np.testing.assert_allclose(
            dist.model.predict_raw(data.X), single.predict_raw(data.X), atol=1e-7
        )
