"""PR 2's error paths under injected faults: no shared memory leaks.

The process-parallel build strategy owns POSIX shared-memory segments
(``/dev/shm/repro_shm_*``) and a fork pool.  Injected crashes abort
stages mid-flight and over-budget faults escape ``fit`` entirely — both
paths must still unlink every segment.  Pool breakage
(``BrokenProcessPool``) must warn, fall back to the sequential kernel,
and finish training correctly even while faults are being injected.
"""

from __future__ import annotations

import glob

import pytest

from repro.chaos import FaultEvent, FaultPlan
from repro.errors import ClusterFaultError
from repro.histogram.shared import SHM_PREFIX
from repro.runtime.build import ProcessParallelBuildStrategy

from tests.chaos.conftest import backend_config, model_hash, run


def leaked_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SHM_PREFIX}*")


def faulty_plan() -> FaultPlan:
    """A crash (rollback-replay) plus sustained drops (retries)."""
    return FaultPlan(
        events=(
            FaultEvent(
                kind="crash", point="histogram_build", worker=1, round_=1
            ),
            FaultEvent(kind="drop", point="push", every=2, times=4),
        ),
        name="process-backend-faults",
    )


class TestSegmentLifetime:
    def test_faulted_fit_releases_all_segments(self, tiny_dataset, baseline):
        before = set(leaked_segments())
        result = run(
            tiny_dataset,
            config=backend_config("process"),
            fault_plan=faulty_plan(),
        )
        assert set(leaked_segments()) == before
        # The crash rolled a round back while the pool was live; the
        # recovered model still matches the fault-free process-pool run.
        reference = baseline(tiny_dataset, backend="process")
        assert model_hash(result) == model_hash(reference)
        assert result.faults["totals"]["crashes"] == 1

    def test_escaping_fault_still_releases_segments(self, tiny_dataset):
        """``ClusterFaultError`` escaping ``fit`` must not leak the slab."""
        before = set(leaked_segments())
        plan = FaultPlan(
            events=(FaultEvent(kind="drop", point="push", attempts=9),),
            name="over-budget",
        )
        with pytest.raises(ClusterFaultError):
            run(
                tiny_dataset,
                config=backend_config("process", max_retries=2),
                fault_plan=plan,
            )
        assert set(leaked_segments()) == before


class _BreakingExecutor:
    """Stand-in executor whose submissions always report a dead pool."""

    def submit(self, *args, **kwargs):
        from concurrent.futures.process import BrokenProcessPool

        raise BrokenProcessPool("worker died")

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestPoolBreakage:
    def test_broken_pool_falls_back_and_trains_through_faults(
        self, tiny_dataset, baseline
    ):
        before = set(leaked_segments())
        strategy = ProcessParallelBuildStrategy(batch_size=32, n_processes=2)
        strategy._executor = _BreakingExecutor()
        try:
            with pytest.warns(RuntimeWarning, match="process pool broke"):
                result = run(
                    tiny_dataset,
                    config=backend_config("process"),
                    fault_plan=faulty_plan(),
                    build_strategy=strategy,
                )
        finally:
            strategy.close()
        assert strategy.fallback_reason == "process pool broke"
        assert set(leaked_segments()) == before
        # The sequential fallback runs the exact sequential kernel, so
        # the model matches the simulated-backend baseline bit for bit.
        reference = baseline(tiny_dataset, backend="simulated")
        assert model_hash(result) == model_hash(reference)
        assert result.faults["totals"]["crashes"] == 1
        assert result.faults["totals"]["drops"] == 4
