"""Tests for the parameter-server group facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PSError
from repro.ps import ParameterServerGroup


@pytest.fixture()
def group() -> ParameterServerGroup:
    g = ParameterServerGroup(n_servers=4)
    g.register("hist", row_length=64, align=8)
    return g


class TestPushPull:
    def test_roundtrip(self, group, rng):
        flat = rng.normal(size=64)
        group.push_row("hist", 0, flat)
        pulled, _ = group.pull_row("hist", 0)
        np.testing.assert_allclose(pulled, flat, atol=1e-12)

    def test_additive_merge_across_workers(self, group, rng):
        flats = [rng.normal(size=64) for _ in range(5)]
        for flat in flats:
            group.push_row("hist", 3, flat)
        pulled, _ = group.pull_row("hist", 3)
        np.testing.assert_allclose(pulled, np.sum(flats, axis=0), atol=1e-9)

    def test_push_wrong_length(self, group):
        with pytest.raises(PSError):
            group.push_row("hist", 0, np.ones(63))

    def test_unregistered_parameter(self, group):
        with pytest.raises(PSError):
            group.pull_row("nope", 0)

    def test_stats_uncompressed(self, group, rng):
        stats = group.push_row("hist", 0, rng.normal(size=64))
        assert stats.bytes_up == 64 * 4
        assert stats.messages == group.partitioner("hist").n_partitions
        _, pull_stats = group.pull_row("hist", 0)
        assert pull_stats.bytes_down == 64 * 4

    def test_double_register(self, group):
        with pytest.raises(PSError):
            group.register("hist", 10)


class TestCompression:
    def test_compressed_push_approximates(self, group, rng):
        flat = rng.normal(size=64)
        group.push_row("hist", 0, flat, compression_bits=8, rng=rng)
        pulled, _ = group.pull_row("hist", 0)
        scale = np.abs(flat).max() / 127
        assert np.max(np.abs(pulled - flat)) <= 2 * scale

    def test_compressed_wire_bytes_smaller(self, group, rng):
        flat = rng.normal(size=64)
        full = group.push_row("hist", 1, flat)
        comp = group.push_row("hist", 2, flat, compression_bits=8, rng=rng)
        assert comp.bytes_up < full.bytes_up

    def test_compression_requires_rng(self, group):
        with pytest.raises(PSError, match="rng"):
            group.push_row("hist", 0, np.ones(64), compression_bits=8)

    def test_sixteen_bit_tighter_than_eight(self, group, rng):
        flat = rng.normal(size=64)
        group.push_row("hist", 4, flat, compression_bits=8, rng=rng)
        group.push_row("hist", 5, flat, compression_bits=16, rng=rng)
        e8, _ = group.pull_row("hist", 4)
        e16, _ = group.pull_row("hist", 5)
        assert np.abs(e16 - flat).max() < np.abs(e8 - flat).max()


class TestPullUDF:
    def test_udf_results_in_partition_order(self, group, rng):
        flat = np.arange(64.0)
        group.push_row("hist", 0, flat)
        results, stats = group.pull_row_udf(
            "hist", 0, lambda values, part: float(values.sum())
        )
        total = sum(r for _p, r in results)
        assert total == pytest.approx(flat.sum())
        # Results arrive ordered by partition id (= feature ranges).
        ids = [p.partition_id for p, _r in results]
        assert ids == sorted(ids)

    def test_udf_wire_is_small(self, group, rng):
        group.push_row("hist", 0, rng.normal(size=64))
        _, stats = group.pull_row_udf(
            "hist", 0, lambda values, part: 1, result_bytes=12
        )
        assert stats.bytes_down == 12 * group.partitioner("hist").n_partitions


class TestMaintenance:
    def test_clear_row(self, group, rng):
        group.push_row("hist", 0, rng.normal(size=64))
        group.clear_row("hist", 0)
        pulled, _ = group.pull_row("hist", 0)
        np.testing.assert_array_equal(pulled, np.zeros(64))

    def test_clear_parameter(self, group, rng):
        group.push_row("hist", 0, rng.normal(size=64))
        group.clear_parameter("hist")
        assert group.memory_bytes() == 0

    def test_memory_grows_per_row(self, group, rng):
        group.push_row("hist", 0, rng.normal(size=64))
        one = group.memory_bytes()
        group.push_row("hist", 1, rng.normal(size=64))
        assert group.memory_bytes() == 2 * one

    def test_invalid_server_count(self):
        with pytest.raises(PSError):
            ParameterServerGroup(0)
