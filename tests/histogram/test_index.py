"""Tests for the node-to-instance index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrainingError
from repro.histogram import NodeInstanceIndex


class TestBasics:
    def test_root_owns_everything(self):
        index = NodeInstanceIndex(10, 7)
        assert index.node_range(0) == (0, 10)
        np.testing.assert_array_equal(index.rows_of(0), np.arange(10))

    def test_split_partitions(self):
        index = NodeInstanceIndex(6, 7)
        mask = np.array([True, False, True, False, False, True])
        left, right = index.split(0, mask)
        assert (left, right) == (1, 2)
        assert sorted(index.rows_of(1)) == [0, 2, 5]
        assert sorted(index.rows_of(2)) == [1, 3, 4]

    def test_split_preserves_order_stably(self):
        index = NodeInstanceIndex(5, 7)
        mask = np.array([False, True, False, True, False])
        index.split(0, mask)
        assert index.rows_of(1).tolist() == [1, 3]
        assert index.rows_of(2).tolist() == [0, 2, 4]

    def test_nested_splits(self):
        index = NodeInstanceIndex(8, 15)
        index.split(0, np.array([True] * 4 + [False] * 4))
        left_rows = index.rows_of(1).copy()  # rows_of returns a live view
        index.split(1, np.array([True, False, True, False]))
        assert sorted(index.rows_of(3)) == sorted(left_rows[[0, 2]].tolist())
        assert sorted(index.rows_of(4)) == sorted(left_rows[[1, 3]].tolist())
        # The right child of the root is untouched.
        assert sorted(index.rows_of(2)) == [4, 5, 6, 7]

    def test_split_view_aliasing_regression(self):
        """rows_of returns a view; split must not corrupt it mid-write.

        Regression for the bug where the right-child write read from the
        already-overwritten left portion of the positions array.
        """
        index = NodeInstanceIndex(6, 7)
        # A mask whose stable partition moves later elements forward.
        mask = np.array([False, False, True, True, False, True])
        index.split(0, mask)
        combined = sorted(
            index.rows_of(1).tolist() + index.rows_of(2).tolist()
        )
        assert combined == [0, 1, 2, 3, 4, 5]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=40))
    def test_split_is_permutation(self, mask_list):
        n = len(mask_list)
        index = NodeInstanceIndex(n, 7)
        mask = np.asarray(mask_list)
        left, right = index.split(0, mask)
        combined = np.concatenate([index.rows_of(left), index.rows_of(right)])
        assert sorted(combined.tolist()) == list(range(n))
        assert index.node_size(left) == int(mask.sum())

    def test_empty_side(self):
        index = NodeInstanceIndex(4, 7)
        left, right = index.split(0, np.array([True] * 4))
        assert index.node_size(left) == 4
        assert index.node_size(right) == 0
        assert len(index.rows_of(right)) == 0


class TestErrors:
    def test_unknown_node(self):
        index = NodeInstanceIndex(4, 7)
        with pytest.raises(TrainingError):
            index.rows_of(3)

    def test_node_out_of_range(self):
        index = NodeInstanceIndex(4, 7)
        with pytest.raises(TrainingError):
            index.rows_of(99)

    def test_mask_length_mismatch(self):
        index = NodeInstanceIndex(4, 7)
        with pytest.raises(TrainingError):
            index.split(0, np.array([True]))

    def test_split_beyond_max_nodes(self):
        index = NodeInstanceIndex(4, 3)
        index.split(0, np.array([True, True, False, False]))
        with pytest.raises(TrainingError):
            index.split(1, np.array([True, True]))

    def test_release(self):
        index = NodeInstanceIndex(4, 7)
        index.split(0, np.array([True, False, True, False]))
        index.release(0)
        assert not index.has_node(0)
        with pytest.raises(TrainingError):
            index.rows_of(0)

    def test_zero_rows(self):
        index = NodeInstanceIndex(0, 3)
        assert index.node_size(0) == 0
